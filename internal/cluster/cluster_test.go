package cluster

import (
	"testing"

	"shufflejoin/internal/array"
)

func gridArray(t *testing.T, n, ci int64) *array.Array {
	t.Helper()
	s := array.MustParseSchema("G<v:int>[i=1,16,4, j=1,16,4]")
	s.Dims[0].End, s.Dims[0].ChunkInterval = n, ci
	s.Dims[1].End, s.Dims[1].ChunkInterval = n, ci
	a := array.MustNew(s)
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a.MustPut([]int64{i, j}, []array.Value{array.IntValue(i * j)})
		}
	}
	return a
}

func TestDistributeRoundRobinCoversAllChunks(t *testing.T) {
	a := gridArray(t, 16, 4) // 4x4 = 16 chunks
	d := Distribute(a, 4, RoundRobin)
	if err := d.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := make(map[int]int)
	for _, n := range d.Placement {
		counts[n]++
	}
	for node := 0; node < 4; node++ {
		if counts[node] != 4 {
			t.Errorf("node %d hosts %d chunks, want 4", node, counts[node])
		}
	}
}

func TestDistributeHashDeterministic(t *testing.T) {
	a := gridArray(t, 16, 4)
	d1 := Distribute(a, 4, HashChunks)
	d2 := Distribute(a, 4, HashChunks)
	for k, n := range d1.Placement {
		if d2.Placement[k] != n {
			t.Fatalf("hash placement not deterministic for %s", k)
		}
	}
}

func TestLocalChunksPartition(t *testing.T) {
	a := gridArray(t, 16, 4)
	d := Distribute(a, 3, RoundRobin)
	seen := make(map[array.ChunkKey]bool)
	for node := 0; node < 3; node++ {
		for _, key := range d.LocalChunks(node) {
			if seen[key] {
				t.Fatalf("chunk %s on two nodes", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != a.ChunkCount() {
		t.Errorf("local chunks cover %d chunks, want %d", len(seen), a.ChunkCount())
	}
}

func TestCellsOnNodeSumsToTotal(t *testing.T) {
	a := gridArray(t, 16, 4)
	d := Distribute(a, 4, RoundRobin)
	var sum int64
	for _, c := range d.CellsOnNode(4) {
		sum += c
	}
	if sum != a.CellCount() {
		t.Errorf("per-node cells sum %d, want %d", sum, a.CellCount())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	a := gridArray(t, 8, 4)
	d := Distribute(a, 2, RoundRobin)
	// Out-of-range node.
	for k := range d.Placement {
		d.Placement[k] = 9
		break
	}
	if err := d.Validate(2); err == nil {
		t.Error("Validate accepted out-of-range node")
	}
	// Missing chunk.
	d2 := Distribute(a, 2, RoundRobin)
	for k := range d2.Placement {
		delete(d2.Placement, k)
		break
	}
	if err := d2.Validate(2); err == nil {
		t.Error("Validate accepted incomplete placement")
	}
}

func TestCatalogRegisterLookup(t *testing.T) {
	c := MustNew(4)
	a := gridArray(t, 8, 4)
	c.Load(a, RoundRobin)
	d, err := c.Catalog.Lookup("G")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if d.Array != a {
		t.Error("Lookup returned a different array")
	}
	if _, err := c.Catalog.Lookup("missing"); err == nil {
		t.Error("Lookup of unknown name should error")
	}
	if names := c.Catalog.Names(); len(names) != 1 || names[0] != "G" {
		t.Errorf("Names = %v", names)
	}
}

func TestLoadExplicitValidates(t *testing.T) {
	c := MustNew(2)
	a := gridArray(t, 8, 4)
	p := make(Placement)
	for _, k := range a.SortedKeys() {
		p[k] = 1
	}
	d, err := c.LoadExplicit(a, p)
	if err != nil {
		t.Fatalf("LoadExplicit: %v", err)
	}
	if got := d.CellsOnNode(2); got[0] != 0 || got[1] != a.CellCount() {
		t.Errorf("CellsOnNode = %v", got)
	}
	bad := make(Placement)
	if _, err := c.LoadExplicit(a, bad); err == nil {
		t.Error("empty placement should fail validation")
	}
}

func TestNewRejectsNonPositive(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}

// localChunksScan is the pre-index reference implementation of
// LocalChunks: rescan every sorted key per call.
func localChunksScan(d *Distributed, node NodeID) []array.ChunkKey {
	var keys []array.ChunkKey
	for _, k := range d.Array.SortedKeys() {
		if d.Placement[k] == node {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestLocalChunksIndexMatchesScan(t *testing.T) {
	a := gridArray(t, 16, 4)
	for _, policy := range []PlacementPolicy{RoundRobin, HashChunks} {
		d := Distribute(a, 3, policy)
		for node := 0; node < 3; node++ {
			want := localChunksScan(d, node)
			got := d.LocalChunks(node)
			if len(got) != len(want) {
				t.Fatalf("policy %v node %d: %d chunks, want %d", policy, node, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("policy %v node %d chunk %d: %s, want %s (C-order must be preserved)",
						policy, node, i, got[i], want[i])
				}
			}
		}
		// Nodes outside the placement have no chunks, as with the scan.
		if got := d.LocalChunks(7); got != nil {
			t.Errorf("LocalChunks(7) = %v, want nil", got)
		}
		if got := d.LocalChunks(-1); got != nil {
			t.Errorf("LocalChunks(-1) = %v, want nil", got)
		}
	}
}

func TestDataFingerprintDistinguishesDataAndPlacement(t *testing.T) {
	a := gridArray(t, 16, 4)
	d1 := Distribute(a, 4, RoundRobin)
	d2 := Distribute(a, 4, RoundRobin)
	if d1.DataFingerprint() != d2.DataFingerprint() {
		t.Error("same array, same placement: fingerprints differ")
	}
	if d1.DataFingerprint() != d1.DataFingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	// Different placement of the same cells.
	d3 := Distribute(a, 4, HashChunks)
	if d1.DataFingerprint() == d3.DataFingerprint() {
		t.Error("different placements share a fingerprint")
	}
	// Different data: same grid, one cell missing, so one chunk's cell
	// count — and with it the skew profile — changes.
	b := array.MustNew(a.Schema)
	skipped := false
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		if !skipped && coords[0] == 1 && coords[1] == 1 {
			skipped = true
			return true
		}
		b.MustPut(coords, attrs)
		return true
	})
	d4 := Distribute(b, 4, RoundRobin)
	if d1.DataFingerprint() == d4.DataFingerprint() {
		t.Error("different per-chunk cell counts share a fingerprint")
	}
}

func TestAttrHistogramCachedAndCorrect(t *testing.T) {
	a := gridArray(t, 8, 4)
	d := Distribute(a, 2, RoundRobin)
	h := d.AttrHistogram("v")
	if h == nil {
		t.Fatal("AttrHistogram(v) = nil")
	}
	if h.Total != a.CellCount() {
		t.Errorf("histogram Total = %d, want %d", h.Total, a.CellCount())
	}
	if h2 := d.AttrHistogram("v"); h2 != h {
		t.Error("second AttrHistogram call rebuilt the histogram instead of caching")
	}
	if d.AttrHistogram("nope") != nil {
		t.Error("unknown attribute should have no histogram")
	}
}
