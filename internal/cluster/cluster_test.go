package cluster

import (
	"testing"

	"shufflejoin/internal/array"
)

func gridArray(t *testing.T, n, ci int64) *array.Array {
	t.Helper()
	s := array.MustParseSchema("G<v:int>[i=1,16,4, j=1,16,4]")
	s.Dims[0].End, s.Dims[0].ChunkInterval = n, ci
	s.Dims[1].End, s.Dims[1].ChunkInterval = n, ci
	a := array.MustNew(s)
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			a.MustPut([]int64{i, j}, []array.Value{array.IntValue(i * j)})
		}
	}
	return a
}

func TestDistributeRoundRobinCoversAllChunks(t *testing.T) {
	a := gridArray(t, 16, 4) // 4x4 = 16 chunks
	d := Distribute(a, 4, RoundRobin)
	if err := d.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := make(map[int]int)
	for _, n := range d.Placement {
		counts[n]++
	}
	for node := 0; node < 4; node++ {
		if counts[node] != 4 {
			t.Errorf("node %d hosts %d chunks, want 4", node, counts[node])
		}
	}
}

func TestDistributeHashDeterministic(t *testing.T) {
	a := gridArray(t, 16, 4)
	d1 := Distribute(a, 4, HashChunks)
	d2 := Distribute(a, 4, HashChunks)
	for k, n := range d1.Placement {
		if d2.Placement[k] != n {
			t.Fatalf("hash placement not deterministic for %s", k)
		}
	}
}

func TestLocalChunksPartition(t *testing.T) {
	a := gridArray(t, 16, 4)
	d := Distribute(a, 3, RoundRobin)
	seen := make(map[array.ChunkKey]bool)
	for node := 0; node < 3; node++ {
		for _, key := range d.LocalChunks(node) {
			if seen[key] {
				t.Fatalf("chunk %s on two nodes", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != a.ChunkCount() {
		t.Errorf("local chunks cover %d chunks, want %d", len(seen), a.ChunkCount())
	}
}

func TestCellsOnNodeSumsToTotal(t *testing.T) {
	a := gridArray(t, 16, 4)
	d := Distribute(a, 4, RoundRobin)
	var sum int64
	for _, c := range d.CellsOnNode(4) {
		sum += c
	}
	if sum != a.CellCount() {
		t.Errorf("per-node cells sum %d, want %d", sum, a.CellCount())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	a := gridArray(t, 8, 4)
	d := Distribute(a, 2, RoundRobin)
	// Out-of-range node.
	for k := range d.Placement {
		d.Placement[k] = 9
		break
	}
	if err := d.Validate(2); err == nil {
		t.Error("Validate accepted out-of-range node")
	}
	// Missing chunk.
	d2 := Distribute(a, 2, RoundRobin)
	for k := range d2.Placement {
		delete(d2.Placement, k)
		break
	}
	if err := d2.Validate(2); err == nil {
		t.Error("Validate accepted incomplete placement")
	}
}

func TestCatalogRegisterLookup(t *testing.T) {
	c := MustNew(4)
	a := gridArray(t, 8, 4)
	c.Load(a, RoundRobin)
	d, err := c.Catalog.Lookup("G")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if d.Array != a {
		t.Error("Lookup returned a different array")
	}
	if _, err := c.Catalog.Lookup("missing"); err == nil {
		t.Error("Lookup of unknown name should error")
	}
	if names := c.Catalog.Names(); len(names) != 1 || names[0] != "G" {
		t.Errorf("Names = %v", names)
	}
}

func TestLoadExplicitValidates(t *testing.T) {
	c := MustNew(2)
	a := gridArray(t, 8, 4)
	p := make(Placement)
	for _, k := range a.SortedKeys() {
		p[k] = 1
	}
	d, err := c.LoadExplicit(a, p)
	if err != nil {
		t.Fatalf("LoadExplicit: %v", err)
	}
	if got := d.CellsOnNode(2); got[0] != 0 || got[1] != a.CellCount() {
		t.Errorf("CellsOnNode = %v", got)
	}
	bad := make(Placement)
	if _, err := c.LoadExplicit(a, bad); err == nil {
		t.Error("empty placement should fail validation")
	}
}

func TestNewRejectsNonPositive(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}
