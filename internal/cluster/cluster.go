// Package cluster models the shared-nothing execution environment of the
// paper's Section 2.1: a set of database instances (nodes), each holding a
// local partition of every distributed array, plus a coordinator node that
// manages the centralized system catalog (node list, array schemas, and
// data distribution).
package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"shufflejoin/internal/array"
	"shufflejoin/internal/stats"
)

// NodeID identifies a cluster node. Nodes are numbered 0..K-1; the
// coordinator role is held by node 0 (the role only matters for catalog
// access, which is free in this in-process model).
type NodeID = int

// Placement assigns each stored chunk of an array to the node that hosts
// it. Every stored chunk key of the array must appear exactly once.
type Placement map[array.ChunkKey]NodeID

// Distributed is an array partitioned over the cluster: the logical array
// plus the chunk-to-node placement. The chunks themselves stay in the
// Array; nodes address their local partition through the placement.
//
// A Distributed is treated as immutable once queried (the facade seals
// arrays before loading them): derived statistics — the per-node chunk
// index, the data fingerprint, and attribute histograms — are computed
// once on first use and cached for the array's lifetime.
type Distributed struct {
	Array     *array.Array
	Placement Placement

	statsOnce sync.Once
	perNode   [][]array.ChunkKey // node -> local chunk keys, C-order
	fprint    uint64             // digest of grid, per-chunk cells, placement
	skewHist  *stats.Histogram   // per-chunk cell-count distribution

	histMu    sync.Mutex
	attrHists map[string]*stats.Histogram
}

// buildStats derives the per-node chunk index, the per-chunk skew
// histogram, and the data fingerprint in one pass over the sorted keys.
// It runs exactly once per Distributed.
func (d *Distributed) buildStats() {
	d.statsOnce.Do(func() {
		nodes := 0
		for _, n := range d.Placement {
			if n+1 > nodes {
				nodes = n + 1
			}
		}
		d.perNode = make([][]array.ChunkKey, nodes)

		var minCells, maxCells float64
		first := true
		keys := d.Array.SortedKeys()
		sizes := make([]float64, 0, len(keys))
		for _, k := range keys {
			cells := float64(d.Array.Chunks[k].Len())
			sizes = append(sizes, cells)
			if first || cells < minCells {
				minCells = cells
			}
			if first || cells > maxCells {
				maxCells = cells
			}
			first = false
		}
		if first {
			minCells, maxCells = 0, 0
		}
		h := stats.NewHistogram(minCells, maxCells, 64)

		const prime64 = 1099511628211
		f := uint64(14695981039346656037)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				f ^= v & 0xff
				f *= prime64
				v >>= 8
			}
		}
		mixStr := func(s string) {
			for i := 0; i < len(s); i++ {
				f ^= uint64(s[i])
				f *= prime64
			}
		}
		mixStr(d.Array.Schema.String())
		mix(uint64(len(keys)))
		for i, k := range keys {
			node, ok := d.Placement[k]
			if ok && node >= 0 && node < nodes {
				d.perNode[node] = append(d.perNode[node], k)
			}
			h.Add(sizes[i])
			mixStr(string(k))
			mix(uint64(sizes[i]))
			mix(uint64(node))
		}
		d.skewHist = h
		mix(h.Fingerprint())
		d.fprint = f
	})
}

// LocalChunks returns the chunk keys hosted by the given node, in
// deterministic (C-order) sequence. The per-node index is built once per
// Distributed (first call) instead of rescanning every sorted key per
// call; the returned slice is shared and must not be modified.
func (d *Distributed) LocalChunks(node NodeID) []array.ChunkKey {
	d.buildStats()
	if node < 0 || node >= len(d.perNode) {
		return nil
	}
	return d.perNode[node]
}

// DataFingerprint digests everything physical planning depends on about
// the stored data: the schema string, the chunk grid (sorted keys), each
// chunk's cell count, the chunk-to-node placement, and the chunk-size
// skew histogram's fingerprint. Two Distributed values with equal
// fingerprints present the same planning problem; a re-ingest under a
// different skew profile changes per-chunk cell counts and therefore the
// fingerprint. Computed once and cached.
func (d *Distributed) DataFingerprint() uint64 {
	d.buildStats()
	return d.fprint
}

// SkewHistogram returns the distribution of per-chunk cell counts — the
// skew profile of the stored data (computed once, shared; do not modify).
func (d *Distributed) SkewHistogram() *stats.Histogram {
	d.buildStats()
	return d.skewHist
}

// AttrHistogram returns a 64-bucket equi-width histogram of the named
// attribute's values — the statistic the paper's engine keeps in its
// catalog, used for join-dimension inference and selectivity estimation.
// Nil for unknown attributes and for attributes with no finite values
// (string columns have no numeric histogram either, but their AsFloat is
// 0, so they histogram degenerately; callers filter by type). Histograms
// are computed on first request and cached per attribute, so per-query
// planning cost does not include a data scan.
func (d *Distributed) AttrHistogram(attrName string) *stats.Histogram {
	ai := d.Array.Schema.AttrIndex(attrName)
	if ai < 0 {
		return nil
	}
	d.histMu.Lock()
	defer d.histMu.Unlock()
	if h, ok := d.attrHists[attrName]; ok {
		return h
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	d.Array.Scan(func(_ []int64, attrs []array.Value) bool {
		v := attrs[ai].AsFloat()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		return true
	})
	var h *stats.Histogram
	if lo <= hi {
		h = stats.NewHistogram(lo, hi, 64)
		d.Array.Scan(func(_ []int64, attrs []array.Value) bool {
			h.Add(attrs[ai].AsFloat())
			return true
		})
	}
	if d.attrHists == nil {
		d.attrHists = make(map[string]*stats.Histogram)
	}
	d.attrHists[attrName] = h
	return h
}

// CellsOnNode returns the number of cells of the array hosted by each node.
func (d *Distributed) CellsOnNode(k int) []int64 {
	counts := make([]int64, k)
	for key, ch := range d.Array.Chunks {
		counts[d.Placement[key]] += int64(ch.Len())
	}
	return counts
}

// Validate checks that the placement covers exactly the stored chunks and
// stays inside the cluster.
func (d *Distributed) Validate(k int) error {
	if len(d.Placement) != len(d.Array.Chunks) {
		return fmt.Errorf("cluster: placement covers %d chunks, array stores %d",
			len(d.Placement), len(d.Array.Chunks))
	}
	for key, node := range d.Placement {
		if _, ok := d.Array.Chunks[key]; !ok {
			return fmt.Errorf("cluster: placement names unknown chunk %s", key)
		}
		if node < 0 || node >= k {
			return fmt.Errorf("cluster: chunk %s placed on node %d outside [0,%d)", key, node, k)
		}
	}
	return nil
}

// PlacementPolicy decides which node hosts each chunk at load time.
type PlacementPolicy int

const (
	// RoundRobin deals chunks to nodes in C-order of their keys: the
	// default SciDB-style distribution.
	RoundRobin PlacementPolicy = iota
	// HashChunks places each chunk by a hash of its key, decorrelating
	// placement from array space.
	HashChunks
)

// Distribute partitions an array over k nodes with the given policy.
func Distribute(a *array.Array, k int, policy PlacementPolicy) *Distributed {
	p := make(Placement, len(a.Chunks))
	keys := a.SortedKeys()
	switch policy {
	case HashChunks:
		for _, key := range keys {
			p[key] = int(hashString(string(key)) % uint64(k))
		}
	default:
		for i, key := range keys {
			p[key] = i % k
		}
	}
	return &Distributed{Array: a, Placement: p}
}

// DistributeExplicit builds a Distributed with a caller-provided placement.
func DistributeExplicit(a *array.Array, p Placement) *Distributed {
	return &Distributed{Array: a, Placement: p}
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Catalog is the centralized system catalog hosted by the coordinator:
// array schemas and distributions, keyed by array name.
type Catalog struct {
	arrays map[string]*Distributed
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{arrays: make(map[string]*Distributed)}
}

// Register records a distributed array. Re-registering a name replaces it.
func (c *Catalog) Register(d *Distributed) {
	c.arrays[d.Array.Schema.Name] = d
}

// Lookup finds a distributed array by name.
func (c *Catalog) Lookup(name string) (*Distributed, error) {
	d, ok := c.arrays[name]
	if !ok {
		return nil, fmt.Errorf("cluster: array %q not in catalog", name)
	}
	return d, nil
}

// Names lists the registered array names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.arrays))
	for n := range c.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cluster is a simulated shared-nothing cluster: K nodes plus the catalog.
type Cluster struct {
	K       int
	Catalog *Catalog
}

// New returns a cluster of k nodes with an empty catalog.
func New(k int) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", k)
	}
	return &Cluster{K: k, Catalog: NewCatalog()}, nil
}

// MustNew is New but panics on error.
func MustNew(k int) *Cluster {
	c, err := New(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Load distributes an array over the cluster and registers it.
func (c *Cluster) Load(a *array.Array, policy PlacementPolicy) *Distributed {
	d := Distribute(a, c.K, policy)
	c.Catalog.Register(d)
	return d
}

// LoadExplicit registers an array with a caller-chosen placement.
func (c *Cluster) LoadExplicit(a *array.Array, p Placement) (*Distributed, error) {
	d := DistributeExplicit(a, p)
	if err := d.Validate(c.K); err != nil {
		return nil, err
	}
	c.Catalog.Register(d)
	return d, nil
}
