// Package cluster models the shared-nothing execution environment of the
// paper's Section 2.1: a set of database instances (nodes), each holding a
// local partition of every distributed array, plus a coordinator node that
// manages the centralized system catalog (node list, array schemas, and
// data distribution).
package cluster

import (
	"fmt"
	"sort"

	"shufflejoin/internal/array"
)

// NodeID identifies a cluster node. Nodes are numbered 0..K-1; the
// coordinator role is held by node 0 (the role only matters for catalog
// access, which is free in this in-process model).
type NodeID = int

// Placement assigns each stored chunk of an array to the node that hosts
// it. Every stored chunk key of the array must appear exactly once.
type Placement map[array.ChunkKey]NodeID

// Distributed is an array partitioned over the cluster: the logical array
// plus the chunk-to-node placement. The chunks themselves stay in the
// Array; nodes address their local partition through the placement.
type Distributed struct {
	Array     *array.Array
	Placement Placement
}

// LocalChunks returns the chunk keys hosted by the given node, in
// deterministic (C-order) sequence.
func (d *Distributed) LocalChunks(node NodeID) []array.ChunkKey {
	var keys []array.ChunkKey
	for _, k := range d.Array.SortedKeys() {
		if d.Placement[k] == node {
			keys = append(keys, k)
		}
	}
	return keys
}

// CellsOnNode returns the number of cells of the array hosted by each node.
func (d *Distributed) CellsOnNode(k int) []int64 {
	counts := make([]int64, k)
	for key, ch := range d.Array.Chunks {
		counts[d.Placement[key]] += int64(ch.Len())
	}
	return counts
}

// Validate checks that the placement covers exactly the stored chunks and
// stays inside the cluster.
func (d *Distributed) Validate(k int) error {
	if len(d.Placement) != len(d.Array.Chunks) {
		return fmt.Errorf("cluster: placement covers %d chunks, array stores %d",
			len(d.Placement), len(d.Array.Chunks))
	}
	for key, node := range d.Placement {
		if _, ok := d.Array.Chunks[key]; !ok {
			return fmt.Errorf("cluster: placement names unknown chunk %s", key)
		}
		if node < 0 || node >= k {
			return fmt.Errorf("cluster: chunk %s placed on node %d outside [0,%d)", key, node, k)
		}
	}
	return nil
}

// PlacementPolicy decides which node hosts each chunk at load time.
type PlacementPolicy int

const (
	// RoundRobin deals chunks to nodes in C-order of their keys: the
	// default SciDB-style distribution.
	RoundRobin PlacementPolicy = iota
	// HashChunks places each chunk by a hash of its key, decorrelating
	// placement from array space.
	HashChunks
)

// Distribute partitions an array over k nodes with the given policy.
func Distribute(a *array.Array, k int, policy PlacementPolicy) *Distributed {
	p := make(Placement, len(a.Chunks))
	keys := a.SortedKeys()
	switch policy {
	case HashChunks:
		for _, key := range keys {
			p[key] = int(hashString(string(key)) % uint64(k))
		}
	default:
		for i, key := range keys {
			p[key] = i % k
		}
	}
	return &Distributed{Array: a, Placement: p}
}

// DistributeExplicit builds a Distributed with a caller-provided placement.
func DistributeExplicit(a *array.Array, p Placement) *Distributed {
	return &Distributed{Array: a, Placement: p}
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Catalog is the centralized system catalog hosted by the coordinator:
// array schemas and distributions, keyed by array name.
type Catalog struct {
	arrays map[string]*Distributed
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{arrays: make(map[string]*Distributed)}
}

// Register records a distributed array. Re-registering a name replaces it.
func (c *Catalog) Register(d *Distributed) {
	c.arrays[d.Array.Schema.Name] = d
}

// Lookup finds a distributed array by name.
func (c *Catalog) Lookup(name string) (*Distributed, error) {
	d, ok := c.arrays[name]
	if !ok {
		return nil, fmt.Errorf("cluster: array %q not in catalog", name)
	}
	return d, nil
}

// Names lists the registered array names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.arrays))
	for n := range c.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cluster is a simulated shared-nothing cluster: K nodes plus the catalog.
type Cluster struct {
	K       int
	Catalog *Catalog
}

// New returns a cluster of k nodes with an empty catalog.
func New(k int) (*Cluster, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", k)
	}
	return &Cluster{K: k, Catalog: NewCatalog()}, nil
}

// MustNew is New but panics on error.
func MustNew(k int) *Cluster {
	c, err := New(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Load distributes an array over the cluster and registers it.
func (c *Cluster) Load(a *array.Array, policy PlacementPolicy) *Distributed {
	d := Distribute(a, c.K, policy)
	c.Catalog.Register(d)
	return d
}

// LoadExplicit registers an array with a caller-chosen placement.
func (c *Cluster) LoadExplicit(a *array.Array, p Placement) (*Distributed, error) {
	d := DistributeExplicit(a, p)
	if err := d.Validate(c.K); err != nil {
		return nil, err
	}
	c.Catalog.Register(d)
	return d, nil
}
