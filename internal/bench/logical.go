package bench

import (
	"fmt"
	"io"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/stats"
	"shufflejoin/internal/workload"
)

// LogicalConfig parameterizes the Section 6.1 experiment: the A:A query
// SELECT * INTO C<i,j>[v] FROM A, B WHERE A.v = B.w over two synthetic
// arrays on a single node, across join algorithms and selectivities.
type LogicalConfig struct {
	CellsPerSide  int64 // default 30k (the paper's 64 MB arrays, scaled)
	Chunks        int64 // stored chunks per array (paper: 32)
	Selectivities []float64
	Seed          int64
	// Trace, when set, receives every query's pipeline spans and metrics
	// (all queries share the one trace; counters accumulate across them).
	Trace *obs.Trace
	// Hooks, when set, observes every query the experiment executes (the
	// obshttp Hub: /debug/inflight while running, the /debug/queries log
	// when finished).
	Hooks pipeline.QueryHooks
}

func (c LogicalConfig) withDefaults() LogicalConfig {
	if c.CellsPerSide == 0 {
		c.CellsPerSide = 40_000
	}
	if c.Chunks == 0 {
		c.Chunks = 32
	}
	if len(c.Selectivities) == 0 {
		c.Selectivities = []float64{0.01, 0.1, 1, 10, 100}
	}
	return c
}

// LogicalMeasurement is one point of Figures 5 and 6: a logical plan's
// modeled cost and its real measured execution time.
type LogicalMeasurement struct {
	Algo        join.Algorithm
	Selectivity float64
	PlanCost    float64 // logical cost model units
	DurationSec float64 // real single-node wall time
	Matches     int64
	Plan        string
}

// RunLogical executes the Section 6.1 experiment: for each selectivity and
// each join algorithm, run the best plan using that algorithm on a
// single-node cluster and measure real execution time. Figure 5 plots
// PlanCost against DurationSec; Figure 6 plots DurationSec against
// selectivity per algorithm.
func RunLogical(cfg LogicalConfig) ([]LogicalMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []LogicalMeasurement
	for _, sel := range cfg.Selectivities {
		a, b, err := workload.SelectivityPair(cfg.CellsPerSide, cfg.CellsPerSide, cfg.Chunks, sel, cfg.Seed+int64(sel*1000))
		if err != nil {
			return nil, err
		}
		// Destination C<i:int, j:int>[v]: the Figure 5 query, with the v
		// dimension sized to the generated key domain.
		outSchema := &array.Schema{
			Name: "C",
			Dims: []array.Dimension{{
				Name:          "v",
				Start:         1,
				End:           cfg.CellsPerSide + 2_000_000_000,
				ChunkInterval: (cfg.CellsPerSide + 2_000_000_000) / cfg.Chunks,
			}},
			Attrs: []array.Attribute{
				{Name: "i", Type: array.TypeInt64},
				{Name: "j", Type: array.TypeInt64},
			},
		}
		pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
		for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
			algo := algo
			c := cluster.MustNew(1)
			c.Load(a.Clone(), cluster.RoundRobin)
			c.Load(b.Clone(), cluster.RoundRobin)
			start := time.Now()
			rep, err := pipeline.Run(c, "A", "B", pred, outSchema, pipeline.Options{
				ForceAlgo:  &algo,
				Logical:    logical.PlanOptions{Selectivity: sel},
				Trace:      cfg.Trace,
				Hooks:      cfg.Hooks,
				QueryLabel: fmt.Sprintf("logical A ⋈ B [sel=%g, %s]", sel, algo),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sel=%v algo=%v: %w", sel, algo, err)
			}
			out = append(out, LogicalMeasurement{
				Algo:        algo,
				Selectivity: sel,
				PlanCost:    rep.Logical.Cost,
				DurationSec: time.Since(start).Seconds(),
				Matches:     rep.Matches,
				Plan:        rep.Logical.Describe(),
			})
		}
	}
	return out, nil
}

// Fig5Fit fits the power-law relation between plan cost and duration that
// Figure 5 reports (the paper finds r² ≈ 0.9 in log-log space).
func Fig5Fit(rows []LogicalMeasurement) (stats.PowerLawFit, error) {
	var xs, ys []float64
	for _, m := range rows {
		xs = append(xs, m.DurationSec)
		ys = append(ys, m.PlanCost)
	}
	return stats.PowerLaw(xs, ys)
}

// Fig5FitAdjusted refits after adding the output-materialization term —
// writeWeight cost units per output cell — to every plan's cost. The paper
// excludes this term from the model because every plan bears it equally
// (Section 6.1); at this repository's scaled-down sizes it dominates
// measured durations, so the adjusted fit is the fair analogue of the
// paper's correlation. A writeWeight of 0 selects a calibrated default.
func Fig5FitAdjusted(rows []LogicalMeasurement, writeWeight float64) (stats.PowerLawFit, error) {
	if writeWeight <= 0 {
		writeWeight = 10
	}
	var xs, ys []float64
	for _, m := range rows {
		xs = append(xs, m.DurationSec)
		ys = append(ys, m.PlanCost+writeWeight*float64(m.Matches))
	}
	return stats.PowerLaw(xs, ys)
}

// MinCostIsFastest reports, per selectivity, whether the plan with the
// minimum modeled cost also had the shortest measured duration — the
// paper's headline Figure 5 finding.
func MinCostIsFastest(rows []LogicalMeasurement) map[float64]bool {
	type best struct{ cost, dur float64 }
	byCost := map[float64]LogicalMeasurement{}
	byDur := map[float64]LogicalMeasurement{}
	for _, m := range rows {
		if cur, ok := byCost[m.Selectivity]; !ok || m.PlanCost < cur.PlanCost {
			byCost[m.Selectivity] = m
		}
		if cur, ok := byDur[m.Selectivity]; !ok || m.DurationSec < cur.DurationSec {
			byDur[m.Selectivity] = m
		}
	}
	out := map[float64]bool{}
	for sel := range byCost {
		out[sel] = byCost[sel].Algo == byDur[sel].Algo
	}
	return out
}

// RenderLogical prints Figures 5 and 6 as text series.
func RenderLogical(w io.Writer, rows []LogicalMeasurement, fit stats.PowerLawFit) {
	fmt.Fprintln(w, "Figure 5: logical plan cost vs. query duration (single node)")
	fmt.Fprintln(w, "=============================================================")
	fmt.Fprintf(w, "%-12s %-12s %14s %14s %10s  %s\n", "algo", "selectivity", "plan cost", "duration(s)", "matches", "plan")
	for _, m := range rows {
		fmt.Fprintf(w, "%-12s %-12g %14.4g %14.4f %10d  %s\n",
			m.Algo, m.Selectivity, m.PlanCost, m.DurationSec, m.Matches, m.Plan)
	}
	fmt.Fprintf(w, "power-law fit: cost ~ duration^%.2f, r^2 = %.3f (paper: r^2 ~= 0.9)\n", fit.Exponent, fit.R2)
	if adj, err := Fig5FitAdjusted(rows, 0); err == nil {
		fmt.Fprintf(w, "with common output-write term: cost ~ duration^%.2f, r^2 = %.3f\n", adj.Exponent, adj.R2)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Figure 6: duration vs. selectivity per logical plan")
	fmt.Fprintln(w, "===================================================")
	algos := []join.Algorithm{join.Hash, join.Merge, join.NestedLoop}
	fmt.Fprintf(w, "%-12s", "selectivity")
	for _, a := range algos {
		fmt.Fprintf(w, " %14s", a)
	}
	fmt.Fprintln(w)
	sels := map[float64]bool{}
	var order []float64
	for _, m := range rows {
		if !sels[m.Selectivity] {
			sels[m.Selectivity] = true
			order = append(order, m.Selectivity)
		}
	}
	for _, sel := range order {
		fmt.Fprintf(w, "%-12g", sel)
		for _, a := range algos {
			for _, m := range rows {
				if m.Selectivity == sel && m.Algo == a {
					fmt.Fprintf(w, " %14.4f", m.DurationSec)
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
