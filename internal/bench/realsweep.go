package bench

import (
	"fmt"
	"math/rand"

	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/workload"
)

// RealSweepConfig parameterizes the executor-level skew sweep: the
// Figure 7 experiment run through the full pipeline (real arrays, real
// slice mapping, real joins) instead of the modeled slice-statistics
// layer. Scaled down — real cells are materialized.
type RealSweepConfig struct {
	Nodes        int   // default 4
	Grid         int64 // chunks per dimension (default 16 -> 256 units)
	ChunkSide    int64 // coordinates per chunk per dimension (default 100)
	CellsPerSide int64 // default 200k
	Alphas       []float64
	Seed         int64
	// Trace, when set, receives every query's pipeline spans and metrics
	// (all queries share the one trace; counters accumulate across them).
	Trace *obs.Trace
	// Hooks, when set, observes every query the experiment executes (the
	// obshttp Hub: /debug/inflight while running, the /debug/queries log
	// when finished).
	Hooks pipeline.QueryHooks
}

func (c RealSweepConfig) withDefaults() RealSweepConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Grid == 0 {
		c.Grid = 16
	}
	if c.ChunkSide == 0 {
		c.ChunkSide = 100
	}
	if c.CellsPerSide == 0 {
		c.CellsPerSide = 200_000
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{0, 1.0, 2.0}
	}
	return c
}

// RealSkewSweep executes the merge-join skew sweep end to end for every
// planner: it validates that the modeled Figure 7 conclusions (baseline
// degrades with skew; skew-aware planners stay flat) hold when real cells
// flow through the system. Rows reuse the PhysMeasurement shape; matches
// are additionally verified identical across planners.
func RealSkewSweep(cfg RealSweepConfig) ([]PhysMeasurement, error) {
	cfg = cfg.withDefaults()
	planners := Config{}.withDefaults().Planners()
	pred := join.Predicate{
		{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}},
		{Left: join.Term{Name: "j"}, Right: join.Term{Name: "j"}},
	}
	algo := join.Merge
	var out []PhysMeasurement
	for _, alpha := range cfg.Alphas {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(alpha*1000)))
		units := int(cfg.Grid * cfg.Grid)
		sizesA := workload.ZipfUnitSizes(units, alpha, cfg.CellsPerSide, rng)
		sizesB := workload.ZipfUnitSizes(units, alpha, cfg.CellsPerSide, rng)
		side := cfg.Grid * cfg.ChunkSide
		a, err := workload.Grid2D("A", side, cfg.ChunkSide, sizesA, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		b, err := workload.Grid2D("B", side, cfg.ChunkSide, sizesB, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		var wantMatches int64 = -1
		for _, name := range PlannerNames {
			c := cluster.MustNew(cfg.Nodes)
			c.Load(a.Clone(), cluster.RoundRobin)
			c.Load(b.Clone(), cluster.HashChunks)
			rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
				Planner:    planners[name],
				ForceAlgo:  &algo,
				Trace:      cfg.Trace,
				Hooks:      cfg.Hooks,
				QueryLabel: fmt.Sprintf("skew sweep α=%g [%s planner]", alpha, name),
			})
			if err != nil {
				return nil, fmt.Errorf("bench: real sweep alpha=%v planner=%s: %w", alpha, name, err)
			}
			if wantMatches == -1 {
				wantMatches = rep.Matches
			} else if rep.Matches != wantMatches {
				return nil, fmt.Errorf("bench: planner %s computed %d matches, others %d",
					name, rep.Matches, wantMatches)
			}
			out = append(out, PhysMeasurement{
				Alpha:      alpha,
				Nodes:      cfg.Nodes,
				Planner:    name,
				PlanSec:    rep.PlanTime,
				AlignSec:   rep.AlignTime,
				CompSec:    rep.CompareTime,
				TotalSec:   rep.Total,
				CellsMoved: rep.CellsMoved,
			})
		}
	}
	return out, nil
}
