package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/workload"
)

// RealConfig parameterizes the Section 6.3 real-world-analogue
// experiments: AIS-like ship tracks joined with MODIS-like satellite
// imagery over 4°×4° geographic chunks.
type RealConfig struct {
	Nodes          int   // default 4, as in the paper's real-data cluster
	AISCells       int64 // default 110k (110 GB scaled 1e-6)
	MODISCells     int64 // default 170k (170 GB scaled 1e-6)
	Seed           int64
	ILPBudget      time.Duration
	ILPMaxExplored int64 // deterministic node budget (see Config)
	Workers        int   // planner parallelism (see Config)
	CoarseBins     int
	// Trace, when set, receives every query's pipeline spans and metrics
	// (all queries share the one trace; counters accumulate across them).
	Trace *obs.Trace
	// Hooks, when set, observes every query the experiment executes (the
	// obshttp Hub: /debug/inflight while running, the /debug/queries log
	// when finished).
	Hooks pipeline.QueryHooks
}

func (c RealConfig) withDefaults() RealConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.AISCells == 0 {
		c.AISCells = 110_000
	}
	if c.MODISCells == 0 {
		c.MODISCells = 170_000
	}
	if c.ILPBudget == 0 {
		c.ILPBudget = 2 * time.Second
	}
	if c.CoarseBins == 0 {
		c.CoarseBins = 75
	}
	return c
}

func (c RealConfig) benchConfig() Config {
	return Config{
		Nodes:          c.Nodes,
		ILPBudget:      c.ILPBudget,
		ILPMaxExplored: c.ILPMaxExplored,
		Workers:        c.Workers,
		CoarseBins:     c.CoarseBins,
	}.withDefaults()
}

// RealMeasurement is one bar of Figure 9 (or the adversarial companion):
// a full shuffle-join execution on the real-data analogue.
type RealMeasurement struct {
	Planner    string
	PlanSec    float64
	AlignSec   float64
	CompSec    float64
	TotalSec   float64
	Matches    int64
	CellsMoved int64
}

// Fig9 reproduces the beneficial-skew experiment of Section 6.3.1: the
// MODIS band joined with AIS broadcasts on the geospatial dimensions
// alone. Expected shape: the shuffle join planners beat the baseline by
// ≈2.5× end-to-end, with data alignment cut by an order of magnitude.
func Fig9(cfg RealConfig) ([]RealMeasurement, error) {
	cfg = cfg.withDefaults()
	band := workload.MODISLike("Band1", workload.GeoConfig{Cells: cfg.MODISCells, Seed: cfg.Seed + 1})
	ships := workload.AISLike("Broadcast", workload.GeoConfig{Cells: cfg.AISCells, Seed: cfg.Seed + 2})
	// The Section 6.3.1 query:
	//   SELECT Band1.reflectance, Broadcast.ship_id
	//   FROM Band1, Broadcast
	//   WHERE Band1.longitude = Broadcast.longitude
	//     AND Band1.latitude  = Broadcast.latitude;
	pred := join.Predicate{
		{Left: join.Term{Name: "longitude"}, Right: join.Term{Name: "longitude"}},
		{Left: join.Term{Name: "latitude"}, Right: join.Term{Name: "latitude"}},
	}
	out := &array.Schema{
		Name: "EnvImpact",
		Dims: []array.Dimension{
			{Name: "longitude", Start: 1, End: 3600, ChunkInterval: 40},
			{Name: "latitude", Start: 1, End: 1800, ChunkInterval: 40},
		},
		Attrs: []array.Attribute{
			{Name: "reflectance", Type: array.TypeFloat64},
			{Name: "ship_id", Type: array.TypeInt64},
		},
	}
	return runReal(cfg, band, ships, pred, out)
}

// Adversarial reproduces the Section 6.3.2 experiment: two MODIS bands —
// near-identical chunk sizes, so dense regions line up — joined on all
// three dimensions (the NDVI query's join structure). Expected shape: all
// planners comparable; the searching planners pay planning overhead
// without finding better plans.
func Adversarial(cfg RealConfig) ([]RealMeasurement, error) {
	cfg = cfg.withDefaults()
	band1 := workload.MODISLike("Band1", workload.GeoConfig{Cells: cfg.MODISCells, Seed: cfg.Seed + 1})
	band2 := makeSecondBand(band1, cfg.Seed+3)
	pred := join.Predicate{
		{Left: join.Term{Name: "time"}, Right: join.Term{Name: "time"}},
		{Left: join.Term{Name: "longitude"}, Right: join.Term{Name: "longitude"}},
		{Left: join.Term{Name: "latitude"}, Right: join.Term{Name: "latitude"}},
	}
	return runReal(cfg, band1, band2, pred, nil)
}

// makeSecondBand derives Band2 from Band1: the same sensor grid with new
// readings and ~1.5% of cells dropped, so corresponding chunks differ
// slightly in size (the paper: mean gap 10k cells vs. mean size 665k).
func makeSecondBand(band1 *array.Array, seed int64) *array.Array {
	rng := rand.New(rand.NewSource(seed))
	s := band1.Schema.Rename("Band2")
	b2 := array.MustNew(s)
	band1.Scan(func(coords []int64, _ []array.Value) bool {
		if rng.Float64() < 0.015 {
			return true // dropped reading
		}
		b2.MustPut(coords, []array.Value{array.FloatValue(rng.Float64())})
		return true
	})
	b2.SortAll()
	return b2
}

// runReal executes the merge join with every planner over fresh clusters.
func runReal(cfg RealConfig, left, right *array.Array, pred join.Predicate, out *array.Schema) ([]RealMeasurement, error) {
	planners := cfg.benchConfig().Planners()
	algo := join.Merge
	var rows []RealMeasurement
	for _, name := range PlannerNames {
		c := cluster.MustNew(cfg.Nodes)
		// The two arrays were loaded independently, so their chunk
		// placements are uncorrelated (round-robin vs. hashed).
		c.Load(left.Clone(), cluster.RoundRobin)
		c.Load(right.Clone(), cluster.HashChunks)
		rep, err := pipeline.Run(c, left.Schema.Name, right.Schema.Name, pred, out, pipeline.Options{
			Planner:    planners[name],
			ForceAlgo:  &algo,
			Trace:      cfg.Trace,
			Hooks:      cfg.Hooks,
			QueryLabel: fmt.Sprintf("real %s ⋈ %s [%s planner]", left.Schema.Name, right.Schema.Name, name),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: planner %s: %w", name, err)
		}
		rows = append(rows, RealMeasurement{
			Planner:    name,
			PlanSec:    rep.PlanTime,
			AlignSec:   rep.AlignTime,
			CompSec:    rep.CompareTime,
			TotalSec:   rep.Total,
			Matches:    rep.Matches,
			CellsMoved: rep.CellsMoved,
		})
	}
	return rows, nil
}

// RenderReal prints a real-data experiment's rows.
func RenderReal(w io.Writer, title string, rows []RealMeasurement) {
	fmt.Fprintf(w, "%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %10s %10s\n",
		"plan", "QueryPlan(s)", "DataAlign(s)", "CellComp(s)", "Total(s)", "matches", "moved")
	for _, m := range rows {
		fmt.Fprintf(w, "%-6s %12.3f %12.3f %12.3f %12.3f %10d %10d\n",
			m.Planner, m.PlanSec, m.AlignSec, m.CompSec, m.TotalSec, m.Matches, m.CellsMoved)
	}
	fmt.Fprintln(w)
}

// Speedup returns baseline total / best shuffle-planner total — the
// paper's headline 2.5× for beneficial skew.
func Speedup(rows []RealMeasurement) float64 {
	var base, best float64
	for _, m := range rows {
		if m.Planner == "B" {
			base = m.TotalSec
		} else if best == 0 || m.TotalSec < best {
			best = m.TotalSec
		}
	}
	if best == 0 {
		return 0
	}
	return base / best
}

// AlignReduction returns baseline alignment / best shuffle-planner
// alignment (the paper reports ≈20× for beneficial skew).
func AlignReduction(rows []RealMeasurement) float64 {
	var base, best float64
	for _, m := range rows {
		if m.Planner == "B" {
			base = m.AlignSec
		} else if best == 0 || m.AlignSec < best {
			best = m.AlignSec
		}
	}
	if best == 0 {
		return 0
	}
	return base / best
}
