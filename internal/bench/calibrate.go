package bench

import (
	"math/rand"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/physical"
)

// Calibrate derives the cost model's compute parameters (m, b, p of
// Section 5.1) empirically from this machine's real join implementations,
// the way the paper derives them from the database's performance. The
// network parameter t cannot be measured on a single machine; it is set to
// keep the paper's regime — network transfer as the scarcest resource —
// at the measured compute speed (t = 20·m).
func Calibrate(cells int, seed int64) physical.CostParams {
	if cells <= 0 {
		cells = 200_000
	}
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, sorted bool) []join.Tuple {
		ts := make([]join.Tuple, n)
		for i := range ts {
			var k int64
			if sorted {
				k = int64(i * 2) // distinct, ordered, ~50% match rate
			} else {
				k = rng.Int63n(int64(n) * 2)
			}
			ts[i] = join.Tuple{Key: []array.Value{array.IntValue(k)}}
		}
		return ts
	}

	// m: merge cursor steps per second over sorted sides.
	left, right := mk(cells, true), mk(cells, true)
	start := time.Now()
	mst, _ := join.MergeJoin(left, right, nil)
	m := time.Since(start).Seconds() / float64(mst.MergeSteps+mst.Matches+1)

	// b and p: separate the build and probe phases of a hash join. Build
	// cost comes from building alone; probe cost from a probe-heavy join
	// (tiny build side) after subtracting the build share.
	unsortedL, unsortedR := mk(cells, false), mk(cells, false)
	start = time.Now()
	join.HashJoinBuildSide(unsortedL, nil, nil)
	b := time.Since(start).Seconds() / float64(cells)

	start = time.Now()
	st := join.HashJoinBuildSide(unsortedL[:1024], unsortedR, nil)
	probeTime := time.Since(start).Seconds() - b*1024
	if probeTime < 0 {
		probeTime = 0
	}
	p := probeTime / float64(st.ProbeOps+1)

	// Guard rails: keep the paper's orderings (b > p, m between them)
	// even on noisy machines.
	if p <= 0 {
		p = m / 2
	}
	if b < 2*p {
		b = 2 * p
	}
	return physical.CostParams{
		Merge:    m,
		Build:    b,
		Probe:    p,
		Transfer: 20 * m,
	}
}
