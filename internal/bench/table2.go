package bench

import (
	"fmt"
	"io"

	"shufflejoin/internal/join"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/stats"
)

// Table2Row is one cell pair of Table 2: a cost-based planner's measured
// hash-join time (data alignment + cell comparison, as in the paper) next
// to the analytical model's estimate, at one skew level.
type Table2Row struct {
	Alpha   float64
	Planner string
	TimeSec float64 // measured (simulated) alignment + comparison
	Cost    float64 // analytical model estimate
}

// Table2 reproduces the analytical-model verification of Section 6.2:
// hash joins at α ∈ {1.0, 1.5, 2.0} planned by the cost-based planners
// (ILP, ILP-Coarse, Tabu), reporting measured time against modeled cost
// and the linear correlation between them (the paper reports r² ≈ 0.9).
func Table2(cfg Config) ([]Table2Row, stats.LinearFit, error) {
	cfg = cfg.withDefaults()
	planners := cfg.Planners()
	costBased := []string{"ILP", "ILP-C", "Tabu"}
	var sim simnet.Sim
	var rows []Table2Row
	var xs, ys []float64
	for _, alpha := range []float64{1.0, 1.5, 2.0} {
		left, right := slicesFor(cfg, join.Hash, alpha)
		for _, name := range costBased {
			m, err := runModeled(cfg, join.Hash, left, right, name, planners[name], &sim)
			if err != nil {
				return nil, stats.LinearFit{}, err
			}
			row := Table2Row{
				Alpha:   alpha,
				Planner: name,
				TimeSec: m.AlignSec + m.CompSec,
				Cost:    m.ModelCost,
			}
			rows = append(rows, row)
			xs = append(xs, row.Cost)
			ys = append(ys, row.TimeSec)
		}
	}
	fit, err := stats.Linear(xs, ys)
	if err != nil {
		return nil, stats.LinearFit{}, err
	}
	return rows, fit, nil
}

// RenderTable2 prints the table in the paper's layout: one row per skew
// level, (time, cost) pairs per planner.
func RenderTable2(w io.Writer, rows []Table2Row, fit stats.LinearFit) {
	fmt.Fprintln(w, "Table 2: Analytical cost model vs. join time (hash join)")
	fmt.Fprintln(w, "========================================================")
	fmt.Fprintf(w, "%-8s | %10s %10s | %10s %10s | %10s %10s\n",
		"Skew", "ILP time", "cost", "ILP-C time", "cost", "Tabu time", "cost")
	byAlpha := map[float64]map[string]Table2Row{}
	for _, r := range rows {
		if byAlpha[r.Alpha] == nil {
			byAlpha[r.Alpha] = map[string]Table2Row{}
		}
		byAlpha[r.Alpha][r.Planner] = r
	}
	for _, alpha := range []float64{1.0, 1.5, 2.0} {
		m := byAlpha[alpha]
		fmt.Fprintf(w, "a=%-6.1f | %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
			alpha,
			m["ILP"].TimeSec, m["ILP"].Cost,
			m["ILP-C"].TimeSec, m["ILP-C"].Cost,
			m["Tabu"].TimeSec, m["Tabu"].Cost)
	}
	fmt.Fprintf(w, "linear fit: time = %.3f*cost + %.3f, r^2 = %.3f (paper: r^2 ~= 0.9)\n\n",
		fit.Slope, fit.Intercept, fit.R2)
}
