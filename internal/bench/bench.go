// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6). Each experiment has a
// typed runner returning the rows/series the paper reports, plus text
// renderers used by cmd/expdriver and the repository's benchmarks.
//
// Scale note: the paper ran 100 GB arrays on physical clusters; these
// experiments keep the paper's decision-space parameters (1024 join units,
// 4,050 geo units, 4 or 2–12 nodes, Zipf α sweeps) while scaling cell
// counts down. Durations are modeled seconds derived from the calibrated
// per-cell cost parameters and the discrete-event network simulation, so
// runs are deterministic; planning times are real wall-clock.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/workload"
)

// Config parameterizes the synthetic physical-planner experiments.
type Config struct {
	Nodes        int   // cluster size (default 4)
	Units        int   // join units (default 1024, as in Section 6.2)
	CellsPerSide int64 // cells per input array (default 4M)
	Seed         int64
	ILPBudget    time.Duration // solver budget (default 2s; paper used 5 min)
	// ILPMaxExplored caps the branch-and-bound search by explored nodes
	// instead of wall-clock alone. The cap is split into fixed per-task
	// quotas over the solver's deterministic task decomposition, so
	// truncated plans are machine-, load-, and Workers-independent.
	// ILPBudget remains a secondary safety cap. Zero leaves the planners
	// on wall-clock only.
	ILPMaxExplored int64
	// Workers parallelizes planner internals (Tabu neighborhood evaluation
	// and the ILP task queue). <= 1 keeps planning sequential; results are
	// identical either way.
	Workers    int
	CoarseBins int // default 75, as in Section 6.2
	Params     physical.CostParams
	Scheduling simnet.Scheduling
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Units == 0 {
		c.Units = 1024
	}
	if c.CellsPerSide == 0 {
		c.CellsPerSide = 4 << 20
	}
	if c.ILPBudget == 0 {
		c.ILPBudget = 2 * time.Second
	}
	if c.CoarseBins == 0 {
		c.CoarseBins = 75
	}
	if c.Params == (physical.CostParams{}) {
		c.Params = physical.DefaultParams()
	}
	return c
}

// PlannerNames is the paper's planner line-up, in figure order.
var PlannerNames = []string{"B", "ILP", "ILP-C", "MBH", "Tabu"}

// Planners instantiates the five physical planners of Section 6.2.
func (c Config) Planners() map[string]physical.Planner {
	c = c.withDefaults()
	return map[string]physical.Planner{
		"B":     physical.BaselinePlanner{},
		"ILP":   physical.ILPPlanner{Budget: c.ILPBudget, MaxExplored: c.ILPMaxExplored, Workers: c.Workers},
		"ILP-C": physical.CoarseILPPlanner{Budget: c.ILPBudget, Bins: c.CoarseBins, MaxExplored: c.ILPMaxExplored, Workers: c.Workers},
		"MBH":   physical.MinBandwidthPlanner{},
		"Tabu":  physical.TabuPlanner{Workers: c.Workers},
	}
}

// PhysMeasurement is one bar of Figures 7, 8, and 10: a planner's query
// decomposed into planning, data alignment, and cell comparison.
type PhysMeasurement struct {
	Alpha      float64
	Nodes      int
	Planner    string
	PlanSec    float64 // real planning wall-time
	AlignSec   float64 // simulated shuffle makespan
	CompSec    float64 // slowest node's modeled comparison time
	TotalSec   float64
	ModelCost  float64 // the analytical model's estimate (Equation 8)
	CellsMoved int64
	Optimal    bool // ILP planners: proved optimal within budget
}

// runModeled plans and simulates one query at the physical layer: slice
// statistics in, phase timings out. The caller passes a simnet.Sim reused
// across the queries of a sweep, so the alignment simulation runs
// allocation-free in steady state; only scalars are taken from the
// simulation Result, which is invalidated by the next call.
func runModeled(cfg Config, algo join.Algorithm, left, right [][]int64, name string, planner physical.Planner, sim *simnet.Sim) (PhysMeasurement, error) {
	pr, err := physical.NewProblem(cfg.Nodes, algo, left, right, cfg.Params)
	if err != nil {
		return PhysMeasurement{}, err
	}
	res, err := planner.Plan(pr)
	if err != nil {
		return PhysMeasurement{}, err
	}

	var transfers []simnet.Transfer
	for u := 0; u < pr.N; u++ {
		dest := res.Assignment[u]
		for j := 0; j < cfg.Nodes; j++ {
			if j != dest && pr.Sizes[u][j] > 0 {
				transfers = append(transfers, simnet.Transfer{From: j, To: dest, Cells: pr.Sizes[u][j], Tag: u})
			}
		}
	}
	align, err := sim.Simulate(simnet.Config{
		Nodes:       cfg.Nodes,
		PerCellTime: cfg.Params.Transfer,
		Scheduling:  cfg.Scheduling,
	}, transfers)
	if err != nil {
		return PhysMeasurement{}, err
	}

	comp := make([]float64, cfg.Nodes)
	for u := 0; u < pr.N; u++ {
		comp[res.Assignment[u]] += pr.Comp[u]
	}
	var maxComp float64
	for _, c := range comp {
		if c > maxComp {
			maxComp = c
		}
	}

	m := PhysMeasurement{
		Nodes:      cfg.Nodes,
		Planner:    name,
		PlanSec:    res.PlanTime.Seconds(),
		AlignSec:   align.Makespan,
		CompSec:    maxComp,
		ModelCost:  res.Model.Total,
		CellsMoved: pr.CellsMoved(res.Assignment),
		Optimal:    res.Optimal,
	}
	m.TotalSec = m.PlanSec + m.AlignSec + m.CompSec
	return m, nil
}

// slicesFor generates the slice statistics for one skew level.
func slicesFor(cfg Config, algo join.Algorithm, alpha float64) (left, right [][]int64) {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(alpha*1000)))
	ls := workload.ZipfUnitSizes(cfg.Units, alpha, cfg.CellsPerSide, rng)
	rs := workload.ZipfUnitSizes(cfg.Units, alpha, cfg.CellsPerSide, rng)
	if algo == join.Merge {
		return workload.MergeSlices(ls, rs, cfg.Nodes, rng)
	}
	return workload.HashSlices(ls, rs, cfg.Nodes, alpha, rng)
}

// SkewSweep runs one join algorithm across the Zipf sweep of Section 6.2
// (Figures 7 and 8) for every planner.
func SkewSweep(cfg Config, algo join.Algorithm, alphas []float64) ([]PhysMeasurement, error) {
	cfg = cfg.withDefaults()
	if len(alphas) == 0 {
		alphas = []float64{0, 0.5, 1.0, 1.5, 2.0}
	}
	planners := cfg.Planners()
	var sim simnet.Sim
	var out []PhysMeasurement
	for _, alpha := range alphas {
		left, right := slicesFor(cfg, algo, alpha)
		for _, name := range PlannerNames {
			m, err := runModeled(cfg, algo, left, right, name, planners[name], &sim)
			if err != nil {
				return nil, err
			}
			m.Alpha = alpha
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig7 reproduces Figure 7: merge join durations across skew levels and
// planners. Expected shape: all planners comparable at α=0; MBH best
// overall for merge joins.
func Fig7(cfg Config) ([]PhysMeasurement, error) {
	return SkewSweep(cfg, join.Merge, nil)
}

// Fig8 reproduces Figure 8: hash join durations across skew levels and
// planners. Expected shape: Tabu best overall; MBH poor at slight skew
// (α=0.5); the ILP solver misses its budget at slight skew.
func Fig8(cfg Config) ([]PhysMeasurement, error) {
	return SkewSweep(cfg, join.Hash, nil)
}

// Fig10 reproduces Figure 10: merge join at α=1.0 scaling from 2 to 12
// nodes. Expected shape: skew-aware planners on 2 nodes beat the baseline
// on 12; MBH best as the cluster grows.
func Fig10(cfg Config, nodeCounts []int) ([]PhysMeasurement, error) {
	cfg = cfg.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 4, 6, 8, 10, 12}
	}
	var sim simnet.Sim
	var out []PhysMeasurement
	for _, k := range nodeCounts {
		kcfg := cfg
		kcfg.Nodes = k
		planners := kcfg.Planners()
		left, right := slicesFor(kcfg, join.Merge, 1.0)
		for _, name := range PlannerNames {
			m, err := runModeled(kcfg, join.Merge, left, right, name, planners[name], &sim)
			if err != nil {
				return nil, err
			}
			m.Alpha = 1.0
			out = append(out, m)
		}
	}
	return out, nil
}

// BeyondPlanners is the planner subset the beyond-paper scale-out runs:
// the baseline and the min-bandwidth heuristic. The solver-based planners
// are excluded because at these cluster sizes the experiment stresses the
// simulated alignment of 100k+ transfers, not solver scaling.
var BeyondPlanners = []string{"B", "MBH"}

// Beyond pushes the Figure 10 scale-out past the paper's 12-node ceiling:
// merge join at α=1.0 on 16, 32, and 64 nodes with a doubled unit count,
// which at k=64 produces over 100k simulated transfers per query — the
// regime the indexed simnet scheduler was built for, where the original
// rescan-everything dispatch loop took minutes per query. Opt-in via
// `expdriver -exp beyond`; it is not part of `-exp all`.
func Beyond(cfg Config, nodeCounts []int) ([]PhysMeasurement, error) {
	if cfg.Units == 0 {
		cfg.Units = 2048
	}
	cfg = cfg.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{16, 32, 64}
	}
	var sim simnet.Sim
	var out []PhysMeasurement
	for _, k := range nodeCounts {
		kcfg := cfg
		kcfg.Nodes = k
		planners := kcfg.Planners()
		left, right := slicesFor(kcfg, join.Merge, 1.0)
		for _, name := range BeyondPlanners {
			m, err := runModeled(kcfg, join.Merge, left, right, name, planners[name], &sim)
			if err != nil {
				return nil, err
			}
			m.Alpha = 1.0
			out = append(out, m)
		}
	}
	return out, nil
}

// RenderPhys writes a figure's measurements as an aligned text table,
// grouped the way the paper's bar charts are.
func RenderPhys(w io.Writer, title, groupLabel string, rows []PhysMeasurement, group func(PhysMeasurement) string) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-8s %-6s %12s %12s %12s %12s %14s %8s\n",
		groupLabel, "plan", "QueryPlan(s)", "DataAlign(s)", "CellComp(s)", "Total(s)", "ModelCost(s)", "Moved")
	last := ""
	for _, m := range rows {
		g := group(m)
		if g != last && last != "" {
			fmt.Fprintln(w)
		}
		last = g
		fmt.Fprintf(w, "%-8s %-6s %12.3f %12.3f %12.3f %12.3f %14.3f %8d\n",
			g, m.Planner, m.PlanSec, m.AlignSec, m.CompSec, m.TotalSec, m.ModelCost, m.CellsMoved)
	}
	fmt.Fprintln(w)
}

// GroupByAlpha and GroupByNodes are the two grouping modes of the figures.
func GroupByAlpha(m PhysMeasurement) string { return fmt.Sprintf("a=%.1f", m.Alpha) }

// GroupByNodes groups scale-out measurements.
func GroupByNodes(m PhysMeasurement) string { return fmt.Sprintf("k=%d", m.Nodes) }

// BestPlannerPerGroup returns, per group, the planner with the lowest
// total, used by shape assertions in tests and EXPERIMENTS.md.
func BestPlannerPerGroup(rows []PhysMeasurement, group func(PhysMeasurement) string) map[string]string {
	best := make(map[string]PhysMeasurement)
	for _, m := range rows {
		g := group(m)
		if cur, ok := best[g]; !ok || m.TotalSec < cur.TotalSec {
			best[g] = m
		}
	}
	out := make(map[string]string, len(best))
	for g, m := range best {
		out[g] = m.Planner
	}
	return out
}

// Select filters measurements.
func Select(rows []PhysMeasurement, pred func(PhysMeasurement) bool) []PhysMeasurement {
	var out []PhysMeasurement
	for _, m := range rows {
		if pred(m) {
			out = append(out, m)
		}
	}
	return out
}

// SortRows orders rows by (alpha, nodes, planner order).
func SortRows(rows []PhysMeasurement) {
	rank := make(map[string]int, len(PlannerNames))
	for i, n := range PlannerNames {
		rank[n] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Alpha != rows[j].Alpha {
			return rows[i].Alpha < rows[j].Alpha
		}
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes < rows[j].Nodes
		}
		return rank[rows[i].Planner] < rank[rows[j].Planner]
	})
}
