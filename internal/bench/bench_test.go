package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"shufflejoin/internal/join"
)

// smallCfg keeps test runs fast while preserving the experiments' shapes.
func smallCfg() Config {
	return Config{
		Units:        128,
		CellsPerSide: 1 << 19,
		ILPBudget:    100 * time.Millisecond,
		Seed:         1,
	}
}

// execTotal is a planner's total excluding planning time — used when a
// shape claim is about plan quality rather than planning overhead.
func execTotal(m PhysMeasurement) float64 { return m.AlignSec + m.CompSec }

func byPlanner(rows []PhysMeasurement, alpha float64) map[string]PhysMeasurement {
	out := map[string]PhysMeasurement{}
	for _, m := range rows {
		if m.Alpha == alpha {
			out[m.Planner] = m
		}
	}
	return out
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(PlannerNames) {
		t.Fatalf("%d rows", len(rows))
	}
	// At uniform data all plans are of similar quality (excluding planning
	// overhead).
	u := byPlanner(rows, 0)
	for name, m := range u {
		if execTotal(m) > 2*execTotal(u["MBH"]) {
			t.Errorf("alpha=0: %s exec total %v more than 2x MBH %v", name, execTotal(m), execTotal(u["MBH"]))
		}
	}
	// Under skew, the skew-aware planners beat the baseline decisively.
	for _, alpha := range []float64{1.0, 1.5, 2.0} {
		m := byPlanner(rows, alpha)
		if execTotal(m["MBH"]) >= execTotal(m["B"]) {
			t.Errorf("alpha=%v: MBH (%v) did not beat baseline (%v)", alpha, execTotal(m["MBH"]), execTotal(m["B"]))
		}
	}
	// MBH is best or near-best including planning time (the paper's
	// merge-join conclusion).
	for _, alpha := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		m := byPlanner(rows, alpha)
		best := m["MBH"].TotalSec
		for _, other := range m {
			if other.TotalSec < best {
				best = other.TotalSec
			}
		}
		if m["MBH"].TotalSec > 1.1*best {
			t.Errorf("alpha=%v: MBH total %v not within 10%% of best %v", alpha, m["MBH"].TotalSec, best)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	rows, err := Fig8(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// MBH collapses at slight skew (alpha = 0.5).
	m := byPlanner(rows, 0.5)
	if execTotal(m["MBH"]) < 2*execTotal(m["Tabu"]) {
		t.Errorf("alpha=0.5: MBH (%v) should be far worse than Tabu (%v)",
			execTotal(m["MBH"]), execTotal(m["Tabu"]))
	}
	// The ILP solver cannot prove optimality at slight skew within budget.
	if m["ILP"].Optimal {
		t.Error("alpha=0.5: ILP should not converge within its budget")
	}
	// Tabu is best or near-best under moderate-to-high skew.
	for _, alpha := range []float64{1.0, 1.5, 2.0} {
		m := byPlanner(rows, alpha)
		best := m["Tabu"].TotalSec
		for _, other := range m {
			if other.TotalSec < best {
				best = other.TotalSec
			}
		}
		if m["Tabu"].TotalSec > 1.15*best {
			t.Errorf("alpha=%v: Tabu total %v not within 15%% of best %v", alpha, m["Tabu"].TotalSec, best)
		}
		if execTotal(m["Tabu"]) >= execTotal(m["B"]) {
			t.Errorf("alpha=%v: Tabu did not beat the baseline", alpha)
		}
	}
	// At uniform data everyone matches (identical even splits).
	u := byPlanner(rows, 0)
	if execTotal(u["MBH"]) != execTotal(u["B"]) || execTotal(u["Tabu"]) != execTotal(u["B"]) {
		t.Error("alpha=0: B, MBH, Tabu should produce identical plans on exactly uniform data")
	}
}

func TestTable2Correlation(t *testing.T) {
	rows, fit, err := Table2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	if fit.R2 < 0.8 {
		t.Errorf("model-vs-time r^2 = %v, want >= 0.8 (paper ~0.9)", fit.R2)
	}
	// Time decreases with skew (more locality to exploit), as in Table 2.
	avg := func(alpha float64) float64 {
		var s float64
		var n int
		for _, r := range rows {
			if r.Alpha == alpha {
				s += r.TimeSec
				n++
			}
		}
		return s / float64(n)
	}
	if !(avg(1.0) > avg(1.5) && avg(1.5) > avg(2.0)) {
		t.Errorf("times should fall with skew: %v %v %v", avg(1.0), avg(1.5), avg(2.0))
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, err := Fig10(smallCfg(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	two := map[string]PhysMeasurement{}
	eight := map[string]PhysMeasurement{}
	for _, m := range rows {
		if m.Nodes == 2 {
			two[m.Planner] = m
		}
		if m.Nodes == 8 {
			eight[m.Planner] = m
		}
	}
	// The paper's headline: skew-aware planners on few nodes beat the
	// baseline on many.
	if execTotal(two["MBH"]) >= execTotal(eight["B"]) {
		t.Errorf("MBH@2 (%v) should beat baseline@8 (%v)",
			execTotal(two["MBH"]), execTotal(eight["B"]))
	}
	// MBH stays competitive at the larger scale.
	best := eight["MBH"].TotalSec
	for _, m := range eight {
		if m.TotalSec < best {
			best = m.TotalSec
		}
	}
	if eight["MBH"].TotalSec > 1.1*best {
		t.Errorf("MBH@8 total %v not within 10%% of best %v", eight["MBH"].TotalSec, best)
	}
}

func TestBeyondShapes(t *testing.T) {
	// Scaled-down beyond-paper sweep: the full 16–64 node version is
	// opt-in via expdriver. 16 nodes already exercises past-paper scale.
	rows, err := Beyond(smallCfg(), []int{13, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(BeyondPlanners) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(BeyondPlanners))
	}
	for _, m := range rows {
		if m.AlignSec <= 0 || m.CompSec <= 0 {
			t.Errorf("%s@%d: degenerate phase timings %+v", m.Planner, m.Nodes, m)
		}
	}
	// The skew-aware heuristic must keep beating the baseline out here.
	for _, k := range []int{13, 16} {
		var b, mbh PhysMeasurement
		for _, m := range rows {
			if m.Nodes == k {
				if m.Planner == "B" {
					b = m
				} else if m.Planner == "MBH" {
					mbh = m
				}
			}
		}
		if execTotal(mbh) >= execTotal(b) {
			t.Errorf("k=%d: MBH (%v) did not beat baseline (%v)", k, execTotal(mbh), execTotal(b))
		}
	}
}

func smallReal() RealConfig {
	return RealConfig{AISCells: 30_000, MODISCells: 45_000, ILPBudget: 100 * time.Millisecond, Seed: 1}
}

func TestFig9Shapes(t *testing.T) {
	rows, err := Fig9(smallReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PlannerNames) {
		t.Fatalf("%d rows", len(rows))
	}
	// All planners compute the same join.
	for _, m := range rows[1:] {
		if m.Matches != rows[0].Matches {
			t.Fatalf("match counts differ: %d vs %d", m.Matches, rows[0].Matches)
		}
	}
	if s := Speedup(rows); s < 1.5 {
		t.Errorf("beneficial-skew speedup = %.2f, want >= 1.5 (paper ~2.5)", s)
	}
	if r := AlignReduction(rows); r < 3 {
		t.Errorf("alignment reduction = %.2f, want >= 3 (paper ~20)", r)
	}
}

func TestAdversarialParity(t *testing.T) {
	rows, err := Adversarial(smallReal())
	if err != nil {
		t.Fatal(err)
	}
	// Comparable execution (excluding planning overhead) across planners.
	get := func(name string) RealMeasurement {
		for _, m := range rows {
			if m.Planner == name {
				return m
			}
		}
		t.Fatalf("missing planner %s", name)
		return RealMeasurement{}
	}
	lo, hi := -1.0, 0.0
	for _, name := range []string{"B", "MBH", "Tabu"} {
		m := get(name)
		et := m.AlignSec + m.CompSec
		if lo < 0 || et < lo {
			lo = et
		}
		if et > hi {
			hi = et
		}
	}
	if hi > 1.6*lo {
		t.Errorf("adversarial skew: exec totals spread %v..%v exceed 1.6x", lo, hi)
	}
}

func TestRunLogicalShapes(t *testing.T) {
	rows, err := RunLogical(LogicalConfig{CellsPerSide: 16000, Selectivities: []float64{0.01, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	var nl, merge, hash LogicalMeasurement
	for _, m := range rows {
		if m.Selectivity != 1 {
			continue
		}
		switch m.Algo {
		case join.NestedLoop:
			nl = m
		case join.Merge:
			merge = m
		case join.Hash:
			hash = m
		}
	}
	// Match counts track the requested selectivity.
	if want := int64(32000); merge.Matches < want*95/100 || merge.Matches > want*105/100 {
		t.Errorf("sel=1 matches = %d, want ~%d", merge.Matches, want)
	}
	if nl.Matches != merge.Matches || hash.Matches != merge.Matches {
		t.Error("algorithms disagree on match count")
	}
	// Nested loop is measurably worst at selectivity 1 (loose margins:
	// wall-clock at this scale is noisy under parallel test load).
	if nl.DurationSec < 1.3*merge.DurationSec || nl.DurationSec < 1.1*hash.DurationSec {
		t.Errorf("nested loop (%.3fs) should be clearly slower than merge (%.3fs) and hash (%.3fs)",
			nl.DurationSec, merge.DurationSec, hash.DurationSec)
	}
	// Cost-model decisions: hash plan cheapest at sel 0.01, merge at 1.
	costs := map[float64]map[join.Algorithm]float64{}
	for _, m := range rows {
		if costs[m.Selectivity] == nil {
			costs[m.Selectivity] = map[join.Algorithm]float64{}
		}
		costs[m.Selectivity][m.Algo] = m.PlanCost
	}
	if !(costs[0.01][join.Hash] < costs[0.01][join.Merge]) {
		t.Error("sel=0.01: hash plan should cost less than merge")
	}
	if !(costs[1][join.Merge] < costs[1][join.NestedLoop]) {
		t.Error("sel=1: merge plan should cost less than nested loop")
	}
}

func TestRenderers(t *testing.T) {
	cfg := Config{Units: 16, CellsPerSide: 1 << 12, ILPBudget: 20 * time.Millisecond, Seed: 2}
	rows, err := SkewSweep(cfg, join.Merge, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderPhys(&buf, "T", "skew", rows, GroupByAlpha)
	if !strings.Contains(buf.String(), "DataAlign(s)") || !strings.Contains(buf.String(), "a=1.0") {
		t.Errorf("RenderPhys output missing fields:\n%s", buf.String())
	}
	t2, fit, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderTable2(&buf, t2, fit)
	if !strings.Contains(buf.String(), "r^2") {
		t.Error("RenderTable2 missing fit line")
	}
	SortRows(rows)
	for i := 1; i < len(rows); i++ {
		if rows[i].Alpha < rows[i-1].Alpha {
			t.Fatal("SortRows did not order by alpha")
		}
	}
	best := BestPlannerPerGroup(rows, GroupByAlpha)
	if len(best) != 2 {
		t.Errorf("BestPlannerPerGroup = %v", best)
	}
}

func TestCalibrateOrderings(t *testing.T) {
	p := Calibrate(50_000, 1)
	if p.Merge <= 0 || p.Build <= 0 || p.Probe <= 0 || p.Transfer <= 0 {
		t.Fatalf("non-positive parameters: %+v", p)
	}
	// The paper's regime: building a hash entry costs much more than
	// probing, and network transfer dominates per-cell compute.
	if p.Build < p.Probe {
		t.Errorf("build (%v) should cost at least probe (%v)", p.Build, p.Probe)
	}
	if p.Transfer < p.Merge {
		t.Errorf("transfer (%v) should dominate merge (%v)", p.Transfer, p.Merge)
	}
	// Sanity: parameters are nanosecond-scale per cell on any machine.
	if p.Merge > 1e-5 {
		t.Errorf("merge per-cell cost %v implausibly high", p.Merge)
	}
}

func TestRealSkewSweepEndToEnd(t *testing.T) {
	rows, err := RealSkewSweep(RealSweepConfig{
		Grid:         8,
		CellsPerSide: 40_000,
		Alphas:       []float64{0, 1.5},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(PlannerNames) {
		t.Fatalf("%d rows", len(rows))
	}
	// The modeled Figure 7 conclusion must survive real execution: under
	// skew the skew-aware MBH beats the baseline on alignment.
	m := byPlanner(rows, 1.5)
	if m["MBH"].AlignSec >= m["B"].AlignSec {
		t.Errorf("real execution: MBH align %v not below baseline %v",
			m["MBH"].AlignSec, m["B"].AlignSec)
	}
	if m["MBH"].CellsMoved >= m["B"].CellsMoved {
		t.Errorf("real execution: MBH moved %d cells, baseline %d",
			m["MBH"].CellsMoved, m["B"].CellsMoved)
	}
}

func TestTable1OperatorsSmall(t *testing.T) {
	rows, fits, err := Table1Operators([]int64{10_000, 40_000, 160_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 ops x 3 sizes
		t.Fatalf("%d rows", len(rows))
	}
	for _, op := range []string{"redim", "rechunk", "sort", "hash"} {
		if _, ok := fits[op]; !ok {
			t.Fatalf("no fit for %s", op)
		}
	}
	// Only the heaviest operator gets a timing-shape assertion (small runs
	// are noisy under parallel test load): redim time must grow with cost.
	if fits["redim"].Slope <= 0 {
		t.Errorf("redim: non-positive slope %v (time must grow with cost)", fits["redim"].Slope)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows, fits)
	if !strings.Contains(buf.String(), "redim") {
		t.Error("RenderTable1 missing rows")
	}
}

func TestRenderRealAndLogical(t *testing.T) {
	var buf bytes.Buffer
	RenderReal(&buf, "T", []RealMeasurement{{Planner: "B", TotalSec: 1, Matches: 5}})
	if !strings.Contains(buf.String(), "B") {
		t.Error("RenderReal missing row")
	}
	rows := []LogicalMeasurement{
		{Algo: join.Hash, Selectivity: 1, PlanCost: 10, DurationSec: 0.1, Matches: 5, Plan: "p"},
		{Algo: join.Merge, Selectivity: 1, PlanCost: 20, DurationSec: 0.2, Matches: 5, Plan: "q"},
		{Algo: join.NestedLoop, Selectivity: 2, PlanCost: 400, DurationSec: 0.9, Matches: 9, Plan: "r"},
	}
	fit, err := Fig5Fit(rows)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderLogical(&buf, rows, fit)
	for _, want := range []string{"Figure 5", "Figure 6", "r^2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("RenderLogical missing %q", want)
		}
	}
	mc := MinCostIsFastest(rows)
	if !mc[1] {
		t.Errorf("MinCostIsFastest = %v", mc)
	}
	if s := Speedup(nil); s != 0 {
		t.Errorf("Speedup(nil) = %v", s)
	}
	if r := AlignReduction(nil); r != 0 {
		t.Errorf("AlignReduction(nil) = %v", r)
	}
}

func TestPlanQualityShapes(t *testing.T) {
	rows, err := PlanQuality(smallCfg(), []float64{0, 1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2 { // three skew levels x two join algorithms
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Regret < 0 {
			t.Errorf("a=%.1f %s: regret %v < 0 (greedy cost below the lower bound)", r.Alpha, r.Algo, r.Regret)
		}
		if r.FellBack != (r.Regret > 0.10) {
			t.Errorf("a=%.1f %s: FellBack=%v inconsistent with regret %v", r.Alpha, r.Algo, r.FellBack, r.Regret)
		}
		if r.GreedyMakespanSec <= 0 || r.FullMakespanSec <= 0 {
			t.Errorf("a=%.1f %s: non-positive makespans %v / %v", r.Alpha, r.Algo, r.GreedyMakespanSec, r.FullMakespanSec)
		}
		// The greedy fast path must be decisively cheaper to run than the
		// budgeted ILP, and a cache hit cheaper still.
		if r.GreedyPlanMicros > r.FullPlanMicros/2 {
			t.Errorf("a=%.1f %s: greedy planning %vus not well under full %vus", r.Alpha, r.Algo, r.GreedyPlanMicros, r.FullPlanMicros)
		}
	}
	// The acceptance criteria the CI gate enforces must hold at test scale.
	if err := PlanQualityGate(rows); err != nil {
		t.Error(err)
	}
	if err := PlanQualityGate(nil); err == nil {
		t.Error("empty sweep should fail the gate")
	}
	s := SummarizePlanQuality(rows)
	if s.Fallbacks == 0 && s.MaxRatioKept == 0 {
		t.Error("summary is empty")
	}
	var buf bytes.Buffer
	RenderPlanQuality(&buf, rows)
	if !strings.Contains(buf.String(), "fallback") {
		t.Error("render output incomplete")
	}
}
