package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/simnet"
)

// MakespanRatioLimit is the plan-quality acceptance bound: at every swept
// skew level, the greedy fast path's modeled makespan must be within 10%
// of the full ILP planner's — or the regret policy must have recorded an
// explicit fallback for that configuration, in which case the query
// would have run the full planner anyway.
const MakespanRatioLimit = 1.10

// CacheHitBudgetFrac is the plan-cache acceptance bound: a cache hit
// (signature lookup plus revalidation against current statistics) must
// cost at most this fraction of the cold full planning it replaces.
const CacheHitBudgetFrac = 0.05

// PlanQualityRow is one configuration of the greedy-vs-ILP calibration
// sweep behind the regret policy's default ε: per skew level and join
// algorithm, the planning wall-times of the greedy fast path, the full
// ILP planner, and a plan-cache hit, plus the modeled makespans their
// assignments achieve in the shuffle simulation.
type PlanQualityRow struct {
	Alpha float64 `json:"alpha"`
	Algo  string  `json:"algo"`

	// Real planning wall-times in microseconds.
	GreedyPlanMicros float64 `json:"greedy_plan_micros"`
	FullPlanMicros   float64 `json:"full_plan_micros"`
	CacheHitMicros   float64 `json:"cache_hit_micros"`  // lookup + revalidation
	CacheMissMicros  float64 `json:"cache_miss_micros"` // lookup of an absent signature

	// Modeled execution (simulated shuffle makespan + slowest node's
	// comparison) under each planner's assignment, in seconds.
	GreedyMakespanSec float64 `json:"greedy_makespan_sec"`
	FullMakespanSec   float64 `json:"full_makespan_sec"`
	// MakespanRatio is greedy over full; 1 means the fast path matched
	// the ILP plan's quality.
	MakespanRatio float64 `json:"makespan_ratio"`

	// Regret is the greedy assignment's predicted regret against the
	// analytic cost lower bound — the quantity the planning policy
	// thresholds. FellBack records whether the default policy (ε =
	// plancache.DefaultEpsilon) would have rejected the greedy plan and
	// run the full planner instead.
	Regret   float64 `json:"regret"`
	FellBack bool    `json:"fell_back"`
}

// modeledPhases simulates one assignment's data alignment and returns the
// shuffle makespan plus the slowest node's modeled comparison time.
func modeledPhases(cfg Config, pr *physical.Problem, assign physical.Assignment, sim *simnet.Sim) (alignSec, compSec float64, err error) {
	var transfers []simnet.Transfer
	for u := 0; u < pr.N; u++ {
		dest := assign[u]
		for j := 0; j < cfg.Nodes; j++ {
			if j != dest && pr.Sizes[u][j] > 0 {
				transfers = append(transfers, simnet.Transfer{From: j, To: dest, Cells: pr.Sizes[u][j], Tag: u})
			}
		}
	}
	align, err := sim.Simulate(simnet.Config{
		Nodes:       cfg.Nodes,
		PerCellTime: cfg.Params.Transfer,
		Scheduling:  cfg.Scheduling,
	}, transfers)
	if err != nil {
		return 0, 0, err
	}
	comp := make([]float64, cfg.Nodes)
	for u := 0; u < pr.N; u++ {
		comp[assign[u]] += pr.Comp[u]
	}
	var maxComp float64
	for _, c := range comp {
		if c > maxComp {
			maxComp = c
		}
	}
	return align.Makespan, maxComp, nil
}

// timedHitMiss measures a plan-cache hit (lookup + revalidation of the
// stored assignment against pr) and a miss (lookup of an absent key),
// averaged over enough iterations to resolve microseconds.
func timedHitMiss(e *plancache.Entry, pr *physical.Problem) (hitMicros, missMicros float64, err error) {
	const iters = 64
	pc := plancache.New()
	sig := plancache.Signature("planquality")
	pc.Store(sig, e)
	start := time.Now()
	for i := 0; i < iters; i++ {
		ent, ok := pc.Lookup(sig)
		if !ok {
			return 0, 0, fmt.Errorf("bench: plan-cache lookup missed its own entry")
		}
		if _, ok := plancache.Revalidate(ent, pr, 0); !ok {
			return 0, 0, fmt.Errorf("bench: revalidation rejected an unchanged problem")
		}
	}
	hitMicros = float64(time.Since(start).Microseconds()) / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, ok := pc.Lookup(sig + "|absent"); ok {
			return 0, 0, fmt.Errorf("bench: plan-cache hit an absent signature")
		}
	}
	missMicros = float64(time.Since(start).Microseconds()) / iters
	return hitMicros, missMicros, nil
}

// PlanQuality runs the greedy-vs-ILP calibration sweep: for each Zipf
// skew level and both join algorithms, plan the same slice statistics
// with the greedy fast path and the full ILP planner, simulate both
// assignments, and time a plan-cache hit against the cold plans. The
// resulting ratios are the evidence behind plancache.DefaultEpsilon and
// the CI plan-quality gate.
func PlanQuality(cfg Config, alphas []float64) ([]PlanQualityRow, error) {
	cfg = cfg.withDefaults()
	if len(alphas) == 0 {
		alphas = []float64{0, 0.5, 1.0, 1.5, 2.0}
	}
	full := physical.ILPPlanner{Budget: cfg.ILPBudget, MaxExplored: cfg.ILPMaxExplored, Workers: cfg.Workers}
	greedy := physical.GreedyPlanner{Workers: cfg.Workers}
	var sim simnet.Sim
	var out []PlanQualityRow
	for _, alpha := range alphas {
		for _, algo := range []join.Algorithm{join.Merge, join.Hash} {
			left, right := slicesFor(cfg, algo, alpha)
			pr, err := physical.NewProblem(cfg.Nodes, algo, left, right, cfg.Params)
			if err != nil {
				return nil, err
			}
			fres, err := full.Plan(pr)
			if err != nil {
				return nil, err
			}
			gres, err := greedy.Plan(pr)
			if err != nil {
				return nil, err
			}
			fAlign, fComp, err := modeledPhases(cfg, pr, fres.Assignment, &sim)
			if err != nil {
				return nil, err
			}
			gAlign, gComp, err := modeledPhases(cfg, pr, gres.Assignment, &sim)
			if err != nil {
				return nil, err
			}
			hitMicros, missMicros, err := timedHitMiss(&plancache.Entry{
				Assignment: gres.Assignment,
				Model:      gres.Model,
				Source:     "greedy",
			}, pr)
			if err != nil {
				return nil, err
			}
			row := PlanQualityRow{
				Alpha:             alpha,
				Algo:              algo.String(),
				GreedyPlanMicros:  float64(gres.PlanTime.Microseconds()),
				FullPlanMicros:    float64(fres.PlanTime.Microseconds()),
				CacheHitMicros:    hitMicros,
				CacheMissMicros:   missMicros,
				GreedyMakespanSec: gAlign + gComp,
				FullMakespanSec:   fAlign + fComp,
				Regret:            plancache.PredictedRegret(pr, gres.Model.Total),
			}
			row.FellBack = row.Regret > plancache.DefaultEpsilon
			if row.FullMakespanSec > 0 {
				row.MakespanRatio = row.GreedyMakespanSec / row.FullMakespanSec
			} else {
				row.MakespanRatio = 1
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// PlanQualitySummary condenses a sweep into the numbers the CI gate and
// EXPERIMENTS.md quote.
type PlanQualitySummary struct {
	// MaxRatioKept is the worst greedy-vs-full makespan ratio among
	// configurations the regret policy keeps (no fallback).
	MaxRatioKept float64 `json:"max_makespan_ratio_kept"`
	// Fallbacks counts configurations where the predicted regret
	// exceeded plancache.DefaultEpsilon.
	Fallbacks int `json:"fallbacks"`
	// WorstHitFrac is the largest cache-hit cost as a fraction of the
	// cold full planning it replaces.
	WorstHitFrac float64 `json:"worst_cache_hit_fraction_of_full_plan"`
	// MinHitSpeedup is the smallest cold-full-plan / cache-hit speedup.
	MinHitSpeedup float64 `json:"min_cache_hit_speedup"`
}

// SummarizePlanQuality folds sweep rows into the gate's summary numbers.
func SummarizePlanQuality(rows []PlanQualityRow) PlanQualitySummary {
	var s PlanQualitySummary
	for _, r := range rows {
		if r.FellBack {
			s.Fallbacks++
		} else if r.MakespanRatio > s.MaxRatioKept {
			s.MaxRatioKept = r.MakespanRatio
		}
		if r.FullPlanMicros > 0 && r.CacheHitMicros > 0 {
			frac := r.CacheHitMicros / r.FullPlanMicros
			if frac > s.WorstHitFrac {
				s.WorstHitFrac = frac
			}
			if speedup := 1 / frac; s.MinHitSpeedup == 0 || speedup < s.MinHitSpeedup {
				s.MinHitSpeedup = speedup
			}
		}
	}
	return s
}

// PlanQualityGate enforces the plan-quality acceptance criteria on a
// sweep: every kept greedy plan within MakespanRatioLimit of the full
// planner (fallbacks are exempt — those queries run the full planner),
// and every cache hit within CacheHitBudgetFrac of the cold full plan it
// replaces. Returns nil when the sweep passes.
func PlanQualityGate(rows []PlanQualityRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("bench: plan-quality gate got no rows")
	}
	for _, r := range rows {
		if !r.FellBack && r.MakespanRatio > MakespanRatioLimit {
			return fmt.Errorf("bench: greedy makespan ratio %.3f > %.2f at a=%.1f %s without fallback (regret %.4f)",
				r.MakespanRatio, MakespanRatioLimit, r.Alpha, r.Algo, r.Regret)
		}
		if r.FullPlanMicros > 0 && r.CacheHitMicros > CacheHitBudgetFrac*r.FullPlanMicros {
			return fmt.Errorf("bench: cache hit %.1fus > %.0f%% of cold full plan %.1fus at a=%.1f %s",
				r.CacheHitMicros, CacheHitBudgetFrac*100, r.FullPlanMicros, r.Alpha, r.Algo)
		}
	}
	return nil
}

// RenderPlanQuality writes the sweep as an aligned text table plus the
// summary line the acceptance criteria quote.
func RenderPlanQuality(w io.Writer, rows []PlanQualityRow) {
	title := "Plan quality: greedy fast path + plan cache vs full ILP planning"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-8s %-7s %12s %12s %12s %12s %10s %10s %9s\n",
		"skew", "algo", "greedy_us", "full_us", "cachehit_us", "cachemiss_us", "ratio", "regret", "fallback")
	last := ""
	for _, r := range rows {
		g := fmt.Sprintf("a=%.1f", r.Alpha)
		if g != last && last != "" {
			fmt.Fprintln(w)
		}
		last = g
		fmt.Fprintf(w, "%-8s %-7s %12.1f %12.1f %12.2f %12.2f %10.3f %10.4f %9v\n",
			g, r.Algo, r.GreedyPlanMicros, r.FullPlanMicros, r.CacheHitMicros, r.CacheMissMicros,
			r.MakespanRatio, r.Regret, r.FellBack)
	}
	s := SummarizePlanQuality(rows)
	fmt.Fprintf(w, "\nkept greedy plans within %.1f%% of ILP makespan (limit %.0f%%); %d fallback(s); worst cache hit %.2f%% of cold plan (min speedup %.0fx)\n\n",
		100*(s.MaxRatioKept-1), 100*(MakespanRatioLimit-1), s.Fallbacks, 100*s.WorstHitFrac, s.MinHitSpeedup)
}
