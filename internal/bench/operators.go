package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"shufflejoin/internal/afl"
	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/shuffle"
	"shufflejoin/internal/stats"
)

// OpMeasurement is one point of the Table-1 validation: an operator run at
// one input size, with its measured time and the logical planner's cost
// formula evaluated at the same point.
type OpMeasurement struct {
	Op        string
	Cells     int64
	Seconds   float64
	ModelCost float64 // Table-1 formula in abstract cell units
}

// Table1Operators validates the logical planner's operator cost formulas
// (Table 1) against this repository's real operator implementations: for
// each input size, it measures redim, rechunk, hash (slice mapping), sort,
// and scan, and fits measured time against the formula per operator. High
// r² means the formulas rank reorganizations the way real executions do.
func Table1Operators(sizes []int64, seed int64) ([]OpMeasurement, map[string]stats.LinearFit, error) {
	if len(sizes) == 0 {
		sizes = []int64{20_000, 40_000, 80_000, 160_000}
	}
	const chunks = 32
	var rows []OpMeasurement
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + n))
		src := array.MustNew(&array.Schema{
			Name:  "A",
			Dims:  []array.Dimension{{Name: "i", Start: 1, End: n, ChunkInterval: (n + chunks - 1) / chunks}},
			Attrs: []array.Attribute{{Name: "v", Type: array.TypeInt64}},
		})
		for i := int64(1); i <= n; i++ {
			src.MustPut([]int64{i}, []array.Value{array.IntValue(rng.Int63n(n))})
		}
		src.SortAll()
		target := &array.Schema{
			Dims:  []array.Dimension{{Name: "v", Start: 0, End: n, ChunkInterval: (n + chunks) / chunks}},
			Attrs: []array.Attribute{{Name: "i", Type: array.TypeInt64}},
		}
		nf, cf := float64(n), float64(chunks)
		logTerm := nf * math.Log2(nf/cf)

		measure := func(op string, model float64, f func() error) error {
			start := time.Now()
			if err := f(); err != nil {
				return err
			}
			rows = append(rows, OpMeasurement{Op: op, Cells: n, Seconds: time.Since(start).Seconds(), ModelCost: model})
			return nil
		}

		var err error
		err = measure("redim", nf+logTerm, func() error {
			_, e := afl.Redimension(src, target)
			return e
		})
		if err != nil {
			return nil, nil, err
		}
		var rechunked *array.Array
		err = measure("rechunk", nf, func() error {
			var e error
			rechunked, e = afl.Rechunk(src, target)
			return e
		})
		if err != nil {
			return nil, nil, err
		}
		err = measure("sort", logTerm, func() error {
			afl.Sort(rechunked)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		// hash: the slice mapping that builds hash-bucket join units.
		d := cluster.Distribute(src, 1, cluster.RoundRobin)
		spec := &shuffle.UnitSpec{Kind: shuffle.HashUnits, NumUnits: chunks}
		mapper := &shuffle.SideMapper{KeyRefs: []join.Ref{{IsDim: false, Index: 0, Name: "v"}}}
		err = measure("hash", nf, func() error {
			_, e := shuffle.MapSide(d, 1, spec, mapper)
			return e
		})
		if err != nil {
			return nil, nil, err
		}
		err = measure("scan", 0, func() error {
			src.Scan(func([]int64, []array.Value) bool { return true })
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}

	fits := map[string]stats.LinearFit{}
	for _, op := range []string{"redim", "rechunk", "sort", "hash"} {
		var xs, ys []float64
		for _, r := range rows {
			if r.Op == op {
				xs = append(xs, r.ModelCost)
				ys = append(ys, r.Seconds)
			}
		}
		fit, err := stats.Linear(xs, ys)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: fitting %s: %w", op, err)
		}
		fits[op] = fit
	}
	return rows, fits, nil
}

// RenderTable1 prints the operator validation.
func RenderTable1(w io.Writer, rows []OpMeasurement, fits map[string]stats.LinearFit) {
	fmt.Fprintln(w, "Table 1 validation: operator cost formulas vs. measured time")
	fmt.Fprintln(w, "=============================================================")
	fmt.Fprintf(w, "%-8s %10s %14s %14s\n", "op", "cells", "model cost", "seconds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10d %14.4g %14.5f\n", r.Op, r.Cells, r.ModelCost, r.Seconds)
	}
	for _, op := range []string{"redim", "rechunk", "sort", "hash"} {
		if fit, ok := fits[op]; ok {
			fmt.Fprintf(w, "%-8s: time = %.3g*cost + %.3g, r^2 = %.3f\n", op, fit.Slope, fit.Intercept, fit.R2)
		}
	}
	fmt.Fprintln(w)
}
