// Package stats provides the statistical utilities the shuffle join
// framework relies on: equi-width histograms used for dimension inference
// during schema resolution (Section 4 of the paper), linear and power-law
// regression with coefficients of determination (used in the evaluation to
// validate the logical and physical cost models), and distribution summary
// helpers (Zipf skew characterization, concentration ratios).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary holds basic distribution statistics of a sample.
type Summary struct {
	N                  int
	Min, Max           float64
	Mean, Stddev       float64
	Sum                float64
	P50, P95, P99      float64
	CoefficientOfVar   float64 // stddev / mean
	MaxToMeanImbalance float64 // max / mean; 1.0 for perfectly even data
}

// Summarize computes summary statistics over the sample.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	if s.Mean != 0 {
		s.CoefficientOfVar = s.Stddev / s.Mean
		s.MaxToMeanImbalance = s.Max / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit is the least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// ErrDegenerate is returned when a regression has too few points or zero
// variance in x.
var ErrDegenerate = errors.New("stats: degenerate regression input")

// Linear fits a least-squares line to (x, y) pairs.
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return LinearFit{}, ErrDegenerate
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrDegenerate
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		// r^2 of the fitted line.
		var ssRes float64
		for i := range xs {
			e := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
			ssRes += e * e
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit, nil
}

// PowerLawFit is y = C * x^Exponent fitted in log-log space, with the r² of
// the log-log regression (the correlation statistic quoted in the paper's
// Figure 5 discussion).
type PowerLawFit struct {
	C, Exponent float64
	R2          float64
}

// PowerLaw fits a power law to strictly positive (x, y) pairs.
func PowerLaw(xs, ys []float64) (PowerLawFit, error) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	lin, err := Linear(lx, ly)
	if err != nil {
		return PowerLawFit{}, err
	}
	return PowerLawFit{C: math.Exp(lin.Intercept), Exponent: lin.Slope, R2: lin.R2}, nil
}

// Histogram is an equi-width histogram over a numeric value range. The
// logical planner uses attribute histograms to infer dimension extents and
// chunk intervals when a redimensioned attribute has no source dimension to
// copy (Section 4, "Join Schema Definition").
type Histogram struct {
	Lo, Hi  float64 // value range covered, [Lo, Hi]
	Buckets []int64
	Total   int64
	// Dropped counts NaN and ±Inf observations rejected by Add. They carry
	// no position on the value axis (int(NaN*n) is platform-defined), so
	// filing them into a bucket would silently corrupt the distribution and
	// inflate Total; instead they are counted here as a data-quality signal.
	Dropped int64
}

// NewHistogram builds an equi-width histogram with nBuckets over [lo, hi].
func NewHistogram(lo, hi float64, nBuckets int) *Histogram {
	if nBuckets < 1 {
		nBuckets = 1
	}
	if hi < lo {
		hi = lo
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, nBuckets)}
}

// Add records one observation. Out-of-range finite values clamp to the end
// buckets; NaN and ±Inf observations are dropped and counted in Dropped.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.Dropped++
		return
	}
	idx := h.bucketOf(v)
	h.Buckets[idx]++
	h.Total++
}

func (h *Histogram) bucketOf(v float64) int {
	if h.Hi == h.Lo {
		return 0
	}
	f := (v - h.Lo) / (h.Hi - h.Lo)
	idx := int(f * float64(len(h.Buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	return idx
}

// Fingerprint returns a 64-bit FNV-1a digest of the histogram's shape:
// range, bucket masses, and the Total/Dropped counters. Two histograms
// fingerprint equal iff they describe the same distribution at the same
// resolution, which is what signature-keyed plan caching needs — a plan
// computed against one skew profile must not be reused under another.
func (h *Histogram) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	if h == nil {
		return offset64
	}
	f := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			f ^= v & 0xff
			f *= prime64
			v >>= 8
		}
	}
	mix(math.Float64bits(h.Lo))
	mix(math.Float64bits(h.Hi))
	mix(uint64(len(h.Buckets)))
	for _, b := range h.Buckets {
		mix(uint64(b))
	}
	mix(uint64(h.Total))
	mix(uint64(h.Dropped))
	return f
}

// ValueRange returns the observed value range as integer bounds, suitable
// for deriving a dimension extent.
func (h *Histogram) ValueRange() (lo, hi int64) {
	return int64(math.Floor(h.Lo)), int64(math.Ceil(h.Hi))
}

// SuggestChunkInterval proposes a chunk interval for a dimension derived
// from this histogram such that an average chunk holds about
// targetCellsPerChunk observations. This translates the histogram of the
// source data's value distribution into a chunking interval as described in
// Section 4.
func (h *Histogram) SuggestChunkInterval(targetCellsPerChunk int64) int64 {
	lo, hi := h.ValueRange()
	extent := hi - lo + 1
	if extent < 1 {
		extent = 1
	}
	if h.Total == 0 || targetCellsPerChunk <= 0 {
		return extent
	}
	chunks := (h.Total + targetCellsPerChunk - 1) / targetCellsPerChunk
	if chunks < 1 {
		chunks = 1
	}
	ci := (extent + chunks - 1) / chunks
	if ci < 1 {
		ci = 1
	}
	return ci
}

// ConcentrationTopFraction returns the fraction of total mass held by the
// largest `frac` fraction of values. The paper characterizes AIS as "85% of
// the data in 5% of the chunks": ConcentrationTopFraction(sizes, 0.05) ≈ 0.85.
func ConcentrationTopFraction(sizes []float64, frac float64) float64 {
	if len(sizes) == 0 {
		return 0
	}
	sorted := append([]float64(nil), sizes...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(math.Ceil(frac * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	var top, total float64
	for i, v := range sorted {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// ZipfWeights returns the normalized Zipf probability weights for n ranks
// at skew alpha: weight(rank k) ∝ 1/k^alpha. alpha = 0 is uniform; larger
// alpha concentrates mass on low ranks. These are the join-unit and slice
// size distributions used throughout Section 6.2.
func ZipfWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for k := 0; k < n; k++ {
		w[k] = 1 / math.Pow(float64(k+1), alpha)
		sum += w[k]
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}
