package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Sum != 15 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2)", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.5*x+10+rng.NormFloat64()*2)
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.05 {
		t.Errorf("slope = %v, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should be degenerate")
	}
	if _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance should be degenerate")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestPowerLawExact(t *testing.T) {
	// y = 3 x^2
	var xs, ys []float64
	for x := 1.0; x <= 10; x++ {
		xs = append(xs, x)
		ys = append(ys, 3*x*x)
	}
	fit, err := PowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-2) > 1e-9 || math.Abs(fit.C-3) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestPowerLawSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4, 8}
	ys := []float64{5, 5, 1, 2, 4, 8} // y = x over the positive points
	fit, err := PowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-1) > 1e-9 {
		t.Errorf("Exponent = %v, want 1", fit.Exponent)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for v := 0.0; v < 100; v++ {
		h.Add(v)
	}
	for i, b := range h.Buckets {
		if b != 10 {
			t.Errorf("bucket %d = %d, want 10", i, b)
		}
	}
	h.Add(-5)  // clamps low
	h.Add(500) // clamps high
	if h.Buckets[0] != 11 || h.Buckets[9] != 11 {
		t.Errorf("clamping failed: %v", h.Buckets)
	}
}

func TestHistogramSuggestChunkInterval(t *testing.T) {
	h := NewHistogram(1, 1000, 10)
	for i := 0; i < 10000; i++ {
		h.Add(float64(i%1000 + 1))
	}
	// 10000 cells, target 1000 per chunk -> 10 chunks over extent 1000 -> ci 100.
	if ci := h.SuggestChunkInterval(1000); ci != 100 {
		t.Errorf("SuggestChunkInterval = %d, want 100", ci)
	}
	// Degenerate: no observations -> whole extent.
	h2 := NewHistogram(1, 50, 5)
	if ci := h2.SuggestChunkInterval(10); ci != 50 {
		t.Errorf("empty histogram interval = %d, want 50", ci)
	}
}

func TestConcentrationTopFraction(t *testing.T) {
	// 100 values: one of 901, ninety-nine of 1 -> top 1% holds 901/1000.
	sizes := make([]float64, 100)
	for i := range sizes {
		sizes[i] = 1
	}
	sizes[42] = 901
	got := ConcentrationTopFraction(sizes, 0.01)
	if math.Abs(got-0.901) > 1e-9 {
		t.Errorf("concentration = %v, want 0.901", got)
	}
	if ConcentrationTopFraction(nil, 0.1) != 0 {
		t.Error("empty input should return 0")
	}
}

func TestZipfWeightsProperties(t *testing.T) {
	f := func(seed int64) bool {
		alpha := math.Abs(float64(seed%40)) / 10 // 0..3.9
		w := ZipfWeights(64, alpha)
		var sum float64
		for i, v := range w {
			sum += v
			if i > 0 && v > w[i-1]+1e-15 {
				return false // must be non-increasing
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZipfWeightsUniformAtZero(t *testing.T) {
	w := ZipfWeights(10, 0)
	for _, v := range w {
		if math.Abs(v-0.1) > 1e-12 {
			t.Errorf("alpha=0 weight = %v, want 0.1", v)
		}
	}
}

func TestZipfSkewIncreasesConcentration(t *testing.T) {
	prev := -1.0
	for _, alpha := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		w := ZipfWeights(1024, alpha)
		c := ConcentrationTopFraction(w, 0.05)
		if c <= prev {
			t.Errorf("alpha=%v: concentration %v not increasing (prev %v)", alpha, c, prev)
		}
		prev = c
	}
}

func TestHistogramDropsNaNAndInf(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	if h.Total != 0 {
		t.Errorf("Total = %d after non-finite adds, want 0", h.Total)
	}
	if h.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", h.Dropped)
	}
	for i, b := range h.Buckets {
		if b != 0 {
			t.Errorf("bucket %d = %d, want 0 (non-finite values must not land anywhere)", i, b)
		}
	}
	h.Add(5)
	if h.Total != 1 || h.Dropped != 3 {
		t.Errorf("after finite add: Total = %d, Dropped = %d, want 1, 3", h.Total, h.Dropped)
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(0)  // v == Lo: first bucket
	h.Add(10) // v == Hi: clamps into the last bucket, not one past it
	if h.Buckets[0] != 1 {
		t.Errorf("Buckets[0] = %d, want 1 (v == Lo)", h.Buckets[0])
	}
	if h.Buckets[3] != 1 {
		t.Errorf("Buckets[3] = %d, want 1 (v == Hi)", h.Buckets[3])
	}
	if h.Total != 2 || h.Dropped != 0 {
		t.Errorf("Total = %d, Dropped = %d, want 2, 0", h.Total, h.Dropped)
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := NewHistogram(7, 7, 4) // Hi == Lo: single-point domain
	h.Add(7)
	h.Add(6) // below: clamps to bucket 0
	h.Add(8) // above: clamps to bucket 0
	h.Add(math.NaN())
	if h.Buckets[0] != 3 {
		t.Errorf("Buckets[0] = %d, want 3 (all finite values collapse to bucket 0)", h.Buckets[0])
	}
	if h.Total != 3 || h.Dropped != 1 {
		t.Errorf("Total = %d, Dropped = %d, want 3, 1", h.Total, h.Dropped)
	}
}

func TestHistogramFingerprint(t *testing.T) {
	build := func(vals ...float64) *Histogram {
		h := NewHistogram(0, 100, 8)
		for _, v := range vals {
			h.Add(v)
		}
		return h
	}
	a := build(1, 2, 3, 50, 99)
	b := build(1, 2, 3, 50, 99)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical histograms fingerprint differently")
	}
	c := build(1, 2, 3, 10, 99) // one observation in another bucket
	if a.Fingerprint() == c.Fingerprint() {
		t.Errorf("different bucket masses share a fingerprint")
	}
	d := build(1, 2, 3, 50, 99)
	d.Add(math.NaN()) // dropped observations are part of the shape
	if a.Fingerprint() == d.Fingerprint() {
		t.Errorf("Dropped count should alter the fingerprint")
	}
	var nilH *Histogram
	if nilH.Fingerprint() != (*Histogram)(nil).Fingerprint() {
		t.Errorf("nil fingerprint should be stable")
	}
}
