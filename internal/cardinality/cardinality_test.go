package cardinality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shufflejoin/internal/stats"
)

// histOf builds a histogram and a frequency map from the given values.
func histOf(values []int64, buckets int) (*stats.Histogram, map[int64]int64) {
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := stats.NewHistogram(float64(lo), float64(hi), buckets)
	counts := make(map[int64]int64)
	for _, v := range values {
		h.Add(float64(v))
		counts[v]++
	}
	return h, counts
}

func uniformValues(rng *rand.Rand, n int, domain int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(domain)
	}
	return out
}

func zipfValues(rng *rand.Rand, n int, domain uint64, s float64) []int64 {
	z := rand.NewZipf(rng, s, 1, domain-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

func TestExactFromCounts(t *testing.T) {
	a := map[int64]int64{1: 2, 2: 3, 5: 1}
	b := map[int64]int64{2: 4, 5: 5, 9: 7}
	if got := EquiJoinFromCounts(a, b); got != 3*4+1*5 {
		t.Errorf("EquiJoinFromCounts = %d, want 17", got)
	}
	if got := EquiJoinFromCounts(b, a); got != 17 {
		t.Error("not symmetric")
	}
}

func TestHistogramEstimateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	av := uniformValues(rng, 50_000, 10_000)
	bv := uniformValues(rng, 50_000, 10_000)
	ha, ca := histOf(av, 64)
	hb, cb := histOf(bv, 64)
	exact := float64(EquiJoinFromCounts(ca, cb))
	est := EquiJoinFromHistograms(ha, hb, 1)
	if est < exact/3 || est > exact*3 {
		t.Errorf("uniform estimate %.0f vs exact %.0f (want within 3x)", est, exact)
	}
}

func TestHistogramEstimateSkewNeedsCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	av := zipfValues(rng, 50_000, 10_000, 1.3)
	bv := zipfValues(rng, 50_000, 10_000, 1.3)
	ha, ca := histOf(av, 64)
	hb, cb := histOf(bv, 64)
	exact := float64(EquiJoinFromCounts(ca, cb))
	plain := EquiJoinFromHistograms(ha, hb, 1)
	corr := math.Sqrt(SkewCorrection(ha) * SkewCorrection(hb))
	corrected := EquiJoinFromHistograms(ha, hb, corr)
	if plain >= exact {
		t.Skip("plain estimate not an underestimate on this seed; correction untestable")
	}
	// The power-law correction must move the estimate toward the truth.
	if math.Abs(corrected-exact) >= math.Abs(plain-exact) {
		t.Errorf("correction did not help: plain %.0f corrected %.0f exact %.0f", plain, corrected, exact)
	}
	if corr <= 1 {
		t.Errorf("skewed data should yield correction > 1, got %v", corr)
	}
}

func TestSkewCorrectionUniformIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, _ := histOf(uniformValues(rng, 40_000, 5_000), 64)
	if c := SkewCorrection(h); c > 1.5 {
		t.Errorf("uniform correction = %v, want ~1", c)
	}
	if c := SkewCorrection(nil); c != 1 {
		t.Errorf("nil correction = %v", c)
	}
}

func TestEstimateEmptyInputs(t *testing.T) {
	h := stats.NewHistogram(0, 10, 4)
	if got := EquiJoinFromHistograms(h, h, 1); got != 0 {
		t.Errorf("empty estimate = %v", got)
	}
	if got := EquiJoinFromHistograms(nil, h, 1); got != 0 {
		t.Errorf("nil estimate = %v", got)
	}
}

func TestEstimateDisjointDomains(t *testing.T) {
	a := stats.NewHistogram(0, 99, 10)
	b := stats.NewHistogram(1000, 1099, 10)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i % 100))
		b.Add(float64(1000 + i%100))
	}
	est := EquiJoinFromHistograms(a, b, 1)
	if est > 50 { // ~0 expected; allow resampling fuzz
		t.Errorf("disjoint estimate = %v, want ~0", est)
	}
}

func TestResampleConservesMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := stats.NewHistogram(0, float64(rng.Intn(500)+100), rng.Intn(30)+2)
		n := rng.Intn(5000) + 100
		for i := 0; i < n; i++ {
			h.Add(rng.Float64() * h.Hi)
		}
		out := resample(h, -10, h.Hi+10, rng.Intn(50)+2)
		var sum float64
		for _, v := range out {
			sum += v
		}
		return math.Abs(sum-float64(h.Total)) < 1e-6*float64(h.Total)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDDOverlap(t *testing.T) {
	if got := DDOverlap(1000, 1000, 10_000); got != 100 {
		t.Errorf("DDOverlap = %v, want 100", got)
	}
	if got := DDOverlap(5, 9, 0); got != 5 {
		t.Errorf("degenerate DDOverlap = %v, want min side", got)
	}
}

func TestSelectivityConvention(t *testing.T) {
	if got := Selectivity(2000, 1000, 1000); got != 1 {
		t.Errorf("Selectivity = %v, want 1", got)
	}
	if got := Selectivity(0, 1000, 1000); got != 1e-6 {
		t.Errorf("floored selectivity = %v", got)
	}
	if got := Selectivity(100, 0, 0); got != 1 {
		t.Errorf("zero-input selectivity = %v", got)
	}
}
