// Package cardinality estimates equi-join output sizes for the logical
// planner. The paper defers output cardinality estimation to
// generalizations of power-law spatial selectivity estimation (Faloutsos
// et al., SIGMOD Record 2000, the paper's [16]); this package provides
// that generalization for array joins:
//
//   - histogram-based estimation for attribute joins, with a power-law
//     (self-similarity) correction for skewed value distributions, and
//   - occupancy-overlap estimation for dimension joins.
//
// The logical planner only needs to know whether the output exceeds the
// inputs to place sorts well (Section 4), so coarse estimates suffice.
package cardinality

import (
	"math"

	"shufflejoin/internal/stats"
)

// EquiJoinFromCounts computes the exact match count from per-value
// frequency maps: Σ_v a(v)·b(v). Used as the reference in tests and when
// exact statistics are available.
func EquiJoinFromCounts(a, b map[int64]int64) int64 {
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	var n int64
	for v, ca := range a {
		n += ca * b[v]
	}
	return n
}

// EquiJoinFromHistograms estimates Σ_v a(v)·b(v) from two equi-width
// histograms over the key domain. Within each aligned bucket the estimate
// assumes the bucket's mass is spread over its distinct values; the
// SkewCorrection factor (≥1) compensates for within-bucket value skew.
//
// Histogram bucket ranges need not match: both are resampled onto the
// union domain at the finer bucket width.
func EquiJoinFromHistograms(a, b *stats.Histogram, corr float64) float64 {
	if a == nil || b == nil || a.Total == 0 || b.Total == 0 {
		return 0
	}
	if corr < 1 {
		corr = 1
	}
	lo := math.Min(a.Lo, b.Lo)
	hi := math.Max(a.Hi, b.Hi)
	buckets := len(a.Buckets)
	if len(b.Buckets) > buckets {
		buckets = len(b.Buckets)
	}
	if hi <= lo {
		// Single-point domain: everything joins with everything.
		return float64(a.Total) * float64(b.Total) * corr
	}
	ra := resample(a, lo, hi, buckets)
	rb := resample(b, lo, hi, buckets)
	width := (hi - lo) / float64(buckets)
	distinct := math.Max(width, 1) // integer keys: ≥1 distinct value per unit width
	var est float64
	for i := 0; i < buckets; i++ {
		est += ra[i] * rb[i] / distinct
	}
	return est * corr
}

// resample projects a histogram onto [lo, hi] with the given bucket count,
// splitting source-bucket mass proportionally by overlap.
func resample(h *stats.Histogram, lo, hi float64, buckets int) []float64 {
	out := make([]float64, buckets)
	if h.Total == 0 {
		return out
	}
	srcW := (h.Hi - h.Lo) / float64(len(h.Buckets))
	dstW := (hi - lo) / float64(buckets)
	if srcW <= 0 {
		// Degenerate source: all mass at h.Lo.
		idx := int((h.Lo - lo) / dstW)
		if idx < 0 {
			idx = 0
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		out[idx] = float64(h.Total)
		return out
	}
	for i, cnt := range h.Buckets {
		if cnt == 0 {
			continue
		}
		sLo := h.Lo + float64(i)*srcW
		sHi := sLo + srcW
		// Distribute cnt over destination buckets overlapping [sLo, sHi].
		first := int((sLo - lo) / dstW)
		last := int((sHi - lo) / dstW)
		if first < 0 {
			first = 0
		}
		if last >= buckets {
			last = buckets - 1
		}
		for d := first; d <= last; d++ {
			dLo := lo + float64(d)*dstW
			dHi := dLo + dstW
			overlap := math.Min(sHi, dHi) - math.Max(sLo, dLo)
			if overlap > 0 {
				out[d] += float64(cnt) * overlap / srcW
			}
		}
	}
	return out
}

// SkewCorrection derives the within-bucket skew multiplier from a
// histogram's bucket-mass distribution, exploiting statistical
// self-similarity: value frequencies inside buckets tend to follow the
// same power law as mass across buckets (the [16] insight). For a Zipf-α
// frequency distribution the expected Σf² inflates over the uniform case
// by the normalized second moment of the fitted law.
func SkewCorrection(h *stats.Histogram) float64 {
	if h == nil || h.Total == 0 {
		return 1
	}
	// Rank the bucket masses and fit a power law: mass ~ C·rank^-α.
	masses := make([]float64, 0, len(h.Buckets))
	for _, c := range h.Buckets {
		if c > 0 {
			masses = append(masses, float64(c))
		}
	}
	if len(masses) < 3 {
		return 1
	}
	// Sort descending (tiny: insertion sort).
	for i := 1; i < len(masses); i++ {
		for j := i; j > 0 && masses[j] > masses[j-1]; j-- {
			masses[j], masses[j-1] = masses[j-1], masses[j]
		}
	}
	ranks := make([]float64, len(masses))
	for i := range ranks {
		ranks[i] = float64(i + 1)
	}
	fit, err := stats.PowerLaw(ranks, masses)
	if err != nil || fit.Exponent >= 0 {
		return 1
	}
	alpha := -fit.Exponent
	// Second-moment inflation of a Zipf-α law over n ranks relative to
	// uniform: n·Σw² where w are normalized Zipf weights.
	n := len(masses)
	w := stats.ZipfWeights(n, alpha)
	var sumSq float64
	for _, wi := range w {
		sumSq += wi * wi
	}
	corr := float64(n) * sumSq
	if corr < 1 {
		corr = 1
	}
	// Cap: correction is a heuristic; runaway fits must not dominate.
	return math.Min(corr, 64)
}

// DDOverlap estimates the output of a dimension-to-dimension equi-join on
// a key space of the given size: under independent placement, each pair of
// cells collides with probability 1/keySpace, so matches ≈ nA·nB/keySpace.
// A keySpace of zero or less returns the conservative min(nA, nB).
func DDOverlap(nA, nB, keySpace int64) float64 {
	if keySpace <= 0 {
		if nA < nB {
			return float64(nA)
		}
		return float64(nB)
	}
	return float64(nA) * float64(nB) / float64(keySpace)
}

// Selectivity converts an output estimate into the paper's selectivity
// convention: sel = n_out / (nA + nB), floored at a small positive value
// so downstream cost formulas stay defined.
func Selectivity(nOut float64, nA, nB int64) float64 {
	denom := float64(nA + nB)
	if denom <= 0 {
		return 1
	}
	sel := nOut / denom
	if sel < 1e-6 {
		sel = 1e-6
	}
	return sel
}
