package physical

import (
	"math/rand"
	"testing"
	"time"

	"shufflejoin/internal/join"
)

func benchProblem(b *testing.B, n, k int) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	left := make([][]int64, n)
	right := make([][]int64, n)
	for i := 0; i < n; i++ {
		l := make([]int64, k)
		r := make([]int64, k)
		for j := 0; j < k; j++ {
			l[j] = rng.Int63n(1000)
			r[j] = rng.Int63n(1000)
		}
		left[i], right[i] = l, r
	}
	pr, err := NewProblem(k, join.Hash, left, right, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

func BenchmarkMinBandwidth1024(b *testing.B) {
	pr := benchProblem(b, 1024, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (MinBandwidthPlanner{}).Plan(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTabu1024(b *testing.B) {
	pr := benchProblem(b, 1024, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (TabuPlanner{}).Plan(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarseILP1024(b *testing.B) {
	pr := benchProblem(b, 1024, 4)
	pl := CoarseILPPlanner{Budget: 50 * time.Millisecond, Bins: 75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Plan(pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate1024(b *testing.B) {
	pr := benchProblem(b, 1024, 4)
	a := CenterOfGravity(pr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Evaluate(a)
	}
}
