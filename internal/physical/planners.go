package physical

import (
	"time"

	"shufflejoin/internal/ilp"
	"shufflejoin/internal/join"
	"shufflejoin/internal/par"
)

// BaselinePlanner is the skew-agnostic comparison point of Section 6.2. It
// makes decisions at the level of entire arrays: for merge joins it moves
// the smaller array to the larger one (each unit goes where the larger
// array's slice of it lives), and for hash joins it deals contiguous
// equal-sized blocks of buckets to the nodes, as relational optimizers do.
type BaselinePlanner struct{}

// Name implements Planner.
func (BaselinePlanner) Name() string { return "Baseline" }

// Plan implements Planner.
func (b BaselinePlanner) Plan(pr *Problem) (Result, error) {
	start := time.Now()
	a := make(Assignment, pr.N)
	if pr.Algo == join.Hash {
		// First ceil(n/k) buckets to node 0, next block to node 1, ...
		block := (pr.N + pr.K - 1) / pr.K
		for i := range a {
			a[i] = i / block
		}
	} else {
		// Whole-array decision: which input is smaller overall?
		var leftCells, rightCells int64
		for i := 0; i < pr.N; i++ {
			leftCells += pr.LeftTotal[i]
			rightCells += pr.RightTotal[i]
		}
		larger := pr.Right
		if leftCells >= rightCells {
			larger = pr.Left
		}
		for i := range a {
			a[i] = argmax(larger[i])
			if larger[i][a[i]] == 0 {
				// Larger array absent from this unit: stay with whatever
				// data exists.
				a[i] = argmax(pr.Sizes[i])
			}
		}
	}
	return Result{
		Planner:    b.Name(),
		Assignment: a,
		Model:      pr.Evaluate(a),
		PlanTime:   time.Since(start),
		Optimal:    false,
	}, nil
}

// MinBandwidthPlanner is the Minimum Bandwidth Heuristic: each join unit is
// assigned to its "center of gravity" — the node already holding the most
// of its cells (Equation 9) — which provably minimizes the cells a plan
// transmits, while ignoring comparison balance.
type MinBandwidthPlanner struct{}

// Name implements Planner.
func (MinBandwidthPlanner) Name() string { return "MBH" }

// Plan implements Planner.
func (m MinBandwidthPlanner) Plan(pr *Problem) (Result, error) {
	start := time.Now()
	a := CenterOfGravity(pr)
	return Result{
		Planner:    m.Name(),
		Assignment: a,
		Model:      pr.Evaluate(a),
		PlanTime:   time.Since(start),
	}, nil
}

// CenterOfGravity computes the MBH assignment: argmax_j s_ij per unit.
// Ties are broken round-robin on the unit index: any tied node moves the
// same number of cells, so the choice is still bandwidth-optimal, and
// rotating avoids piling every tied unit onto node 0 when data is exactly
// uniform.
func CenterOfGravity(pr *Problem) Assignment {
	a := make(Assignment, pr.N)
	for i := 0; i < pr.N; i++ {
		row := pr.Sizes[i]
		best := argmax(row)
		pick := best
		for off := 0; off < pr.K; off++ {
			j := (i + off) % pr.K
			if row[j] == row[best] {
				pick = j
				break
			}
		}
		a[i] = pick
	}
	return a
}

func argmax(row []int64) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// GreedyPlanner is the fast-path physical planner: the center-of-gravity
// seed (minimum bandwidth, Equation 9) polished by a bounded number of
// Tabu rebalancing sweeps — one by default — and no ILP search. Planning
// cost is O(N·K) for the seed plus the capped sweeps, microseconds at
// paper scale, while the polish pass removes the worst comparison
// hot-spots the pure bandwidth heuristic leaves on skewed data. The
// regret-based plan policy (internal/plancache) decides per query whether
// this path's predicted gap to the lower bound is small enough to skip
// the full planner.
type GreedyPlanner struct {
	// Polish is the number of Tabu rebalancing sweeps after the seed;
	// <= 0 means 1.
	Polish int
	// Workers shards the what-if evaluation as in TabuPlanner; the result
	// is identical at every setting.
	Workers int
}

// Name implements Planner.
func (GreedyPlanner) Name() string { return "Greedy" }

// Plan implements Planner.
func (g GreedyPlanner) Plan(pr *Problem) (Result, error) {
	rounds := g.Polish
	if rounds <= 0 {
		rounds = 1
	}
	res, err := TabuPlanner{MaxRounds: rounds, Workers: g.Workers}.Plan(pr)
	if err != nil {
		return Result{}, err
	}
	res.Planner = GreedyPlanner{}.Name()
	return res, nil
}

// TabuPlanner implements Algorithm 2: start from the minimum-bandwidth
// plan, then repeatedly rebalance nodes whose per-node cost exceeds the
// mean by moving join units to cheaper nodes, never repeating a
// unit-to-node assignment (the tabu list holds assignments, not whole
// plans, keeping the search polynomial and loop-free).
//
// Moves are selected best-improvement: every candidate (unit, node) move
// off the overloaded node is costed with an O(k) what-if, and the winner
// is chosen by the deterministic (cost, unit, node) tie-break. The
// neighborhood evaluation is sharded over Workers goroutines; because the
// winning move depends only on the candidate costs — not on evaluation
// order — the search trajectory, final assignment, and cost are bit-for-bit
// identical at every Workers setting.
type TabuPlanner struct {
	// MaxRounds caps the outer rebalancing loop as a safety net; zero
	// means no cap beyond the tabu list's natural exhaustion.
	MaxRounds int
	// DisableTabuList turns off the assignment-level tabu memory, leaving
	// pure improving-move hill climbing (moves still terminate because
	// every accepted move strictly reduces the plan cost). Exists for the
	// tabu-granularity ablation benchmark.
	DisableTabuList bool
	// Workers shards the what-if evaluation of the move neighborhood;
	// <= 1 evaluates sequentially. The result is identical either way.
	Workers int
}

// Name implements Planner.
func (TabuPlanner) Name() string { return "Tabu" }

// Plan implements Planner.
func (t TabuPlanner) Plan(pr *Problem) (Result, error) {
	start := time.Now()
	a := CenterOfGravity(pr)

	// tabu[i*K+j] marks unit i having ever been assigned to node j.
	tabu := make([]bool, pr.N*pr.K)
	for i, j := range a {
		tabu[i*pr.K+j] = true
	}

	ev := newEvaluator(pr, a)
	var stats SearchStats
	for {
		stats.TabuRounds++
		if t.MaxRounds > 0 && stats.TabuRounds > t.MaxRounds {
			break
		}
		changed := false
		costs := ev.nodeCosts()
		mean := 0.0
		for _, c := range costs {
			mean += c
		}
		mean /= float64(pr.K)
		for n := 0; n < pr.K; n++ {
			if costs[n] <= mean {
				continue
			}
			if t.rebalanceNode(pr, a, n, tabu, ev, &stats) {
				changed = true
				costs = ev.nodeCosts()
			}
		}
		if !changed {
			break
		}
	}
	res := Result{
		Planner:    t.Name(),
		Assignment: a,
		Model:      pr.Evaluate(a),
		PlanTime:   time.Since(start),
		Search:     stats,
	}
	if sp := pr.Span; sp != nil {
		sp.SetInt("tabu.rounds", int64(stats.TabuRounds))
		sp.SetInt("tabu.moves", int64(stats.TabuMoves))
		sp.SetInt("tabu.whatifs", stats.TabuWhatIfs)
	}
	return res, nil
}

// tabuMove is one candidate reassignment with its what-if plan cost.
type tabuMove struct {
	cost float64
	unit int
	node int
}

// better orders moves by the deterministic (cost, unit, node) tie-break.
func (m tabuMove) better(o tabuMove) bool {
	if m.cost != o.cost {
		return m.cost < o.cost
	}
	if m.unit != o.unit {
		return m.unit < o.unit
	}
	return m.node < o.node
}

// rebalanceNode repeatedly applies the best cost-improving move of a unit
// off node n to any non-tabu node (the what-if analysis of Algorithm 2)
// until none improves. Each what-if is an O(k) read-only evaluation, so
// the candidate neighborhood shards freely across workers; the applied
// move is the deterministic minimum over all candidates.
func (t TabuPlanner) rebalanceNode(pr *Problem, a Assignment, n int, tabu []bool, ev *evaluator, stats *SearchStats) bool {
	workers := t.Workers
	improved := false
	for {
		var cands []tabuMove
		for i := 0; i < pr.N; i++ {
			if a[i] != n {
				continue
			}
			for j := 0; j < pr.K; j++ {
				if j == n || (!t.DisableTabuList && tabu[i*pr.K+j]) {
					continue
				}
				cands = append(cands, tabuMove{unit: i, node: j})
			}
		}
		if len(cands) == 0 {
			return improved
		}
		stats.TabuWhatIfs += int64(len(cands))
		cur := ev.total()
		none := tabuMove{cost: cur, unit: -1}
		// Spawning goroutines only pays off on real neighborhoods.
		w := workers
		if w < 1 || len(cands) < 256 {
			w = 1
		}
		winners := make([]tabuMove, w)
		for i := range winners {
			winners[i] = none
		}
		par.ForChunks(len(cands), len(winners), func(lo, hi, wid int) {
			best := none
			for c := lo; c < hi; c++ {
				cand := cands[c]
				cand.cost = ev.whatIf(cand.unit, n, cand.node)
				if cand.cost < cur && cand.better(best) {
					best = cand
				}
			}
			winners[wid] = best
		})
		win := none
		for _, m := range winners {
			if m.unit >= 0 && m.better(win) {
				win = m
			}
		}
		if win.unit < 0 {
			return improved
		}
		ev.move(win.unit, n, win.node)
		a[win.unit] = win.node
		tabu[win.unit*pr.K+win.node] = true
		stats.TabuMoves++
		improved = true
	}
}

// evaluator maintains per-node send/receive/comparison accumulators for a
// live assignment so single-unit moves cost O(k) to evaluate.
type evaluator struct {
	pr   *Problem
	send []int64 // cells node j must transmit
	recv []int64 // cells node j must receive
	comp []float64
}

func newEvaluator(pr *Problem, a Assignment) *evaluator {
	ev := &evaluator{
		pr:   pr,
		send: make([]int64, pr.K),
		recv: make([]int64, pr.K),
		comp: make([]float64, pr.K),
	}
	pr.accumulate(a, ev.send, ev.recv, ev.comp)
	return ev
}

// whatIf returns the Equation-8 plan cost after hypothetically moving
// unit i from node from to node to, without mutating the evaluator — the
// read-only form of move+total that concurrent neighborhood evaluation
// requires. The arithmetic mirrors move/total exactly, so a what-if cost
// equals the total that applying the move would produce, bit for bit.
func (ev *evaluator) whatIf(i, from, to int) float64 {
	pr := ev.pr
	sendFrom := ev.send[from] + pr.Sizes[i][from]
	sendTo := ev.send[to] - pr.Sizes[i][to]
	recvFrom := ev.recv[from] - (pr.UnitTotal[i] - pr.Sizes[i][from])
	recvTo := ev.recv[to] + (pr.UnitTotal[i] - pr.Sizes[i][to])
	compFrom := ev.comp[from] - pr.Comp[i]
	compTo := ev.comp[to] + pr.Comp[i]
	var move int64
	var maxComp float64
	for j := 0; j < pr.K; j++ {
		s, r, c := ev.send[j], ev.recv[j], ev.comp[j]
		if j == from {
			s, r, c = sendFrom, recvFrom, compFrom
		} else if j == to {
			s, r, c = sendTo, recvTo, compTo
		}
		if s > move {
			move = s
		}
		if r > move {
			move = r
		}
		if c > maxComp {
			maxComp = c
		}
	}
	return float64(move)*pr.Params.Transfer + maxComp
}

// move reassigns unit i from node from to node to.
func (ev *evaluator) move(i, from, to int) {
	pr := ev.pr
	// The slice resident on the old destination must now be shipped; the
	// slice on the new destination no longer moves.
	ev.send[from] += pr.Sizes[i][from]
	ev.send[to] -= pr.Sizes[i][to]
	ev.recv[from] -= pr.UnitTotal[i] - pr.Sizes[i][from]
	ev.recv[to] += pr.UnitTotal[i] - pr.Sizes[i][to]
	ev.comp[from] -= pr.Comp[i]
	ev.comp[to] += pr.Comp[i]
}

// total computes the Equation-8 plan cost from the accumulators.
func (ev *evaluator) total() float64 {
	var move int64
	var maxComp float64
	for j := 0; j < ev.pr.K; j++ {
		if ev.send[j] > move {
			move = ev.send[j]
		}
		if ev.recv[j] > move {
			move = ev.recv[j]
		}
		if ev.comp[j] > maxComp {
			maxComp = ev.comp[j]
		}
	}
	return float64(move)*ev.pr.Params.Transfer + maxComp
}

// nodeCosts mirrors Problem.NodeCosts from the accumulators.
func (ev *evaluator) nodeCosts() []float64 {
	out := make([]float64, ev.pr.K)
	for j := 0; j < ev.pr.K; j++ {
		move := ev.send[j]
		if ev.recv[j] > move {
			move = ev.recv[j]
		}
		out[j] = float64(move)*ev.pr.Params.Transfer + ev.comp[j]
	}
	return out
}

// ILPPlanner seeks the optimal assignment with the branch-and-bound solver
// under a budget, mirroring the paper's use of SCIP with a workload-tuned
// time limit. MaxExplored adds a deterministic node budget (plan quality
// no longer depends on machine speed or load); Budget remains the
// wall-clock cap. Workers parallelizes the search — any setting returns
// the same canonical optimum whenever the search completes.
type ILPPlanner struct {
	Budget      time.Duration
	MaxExplored int64
	Workers     int
}

// Name implements Planner.
func (ILPPlanner) Name() string { return "ILP" }

// Plan implements Planner.
func (p ILPPlanner) Plan(pr *Problem) (Result, error) {
	start := time.Now()
	sol, err := ilp.SolveOpts(&ilp.Problem{
		K:        pr.K,
		Sizes:    pr.Sizes,
		Comp:     pr.Comp,
		Transfer: pr.Params.Transfer,
	}, solverOptions(pr, p.Budget, p.MaxExplored, p.Workers))
	if err != nil {
		return Result{}, err
	}
	a := Assignment(sol.Assignment)
	return Result{
		Planner:    p.Name(),
		Assignment: a,
		Model:      pr.Evaluate(a),
		PlanTime:   time.Since(start),
		Optimal:    sol.Optimal,
		Search:     ilpStats(sol),
	}, nil
}

// solverOptions applies the planners' shared budget defaulting: with
// neither a wall-clock nor a node budget set, fall back to the historical
// 5-second wall-clock cap.
func solverOptions(pr *Problem, budget time.Duration, maxExplored int64, workers int) ilp.Options {
	if budget <= 0 && maxExplored <= 0 {
		budget = 5 * time.Second
	}
	return ilp.Options{Budget: budget, MaxExplored: maxExplored, Workers: workers, Span: pr.Span}
}

// ilpStats maps the solver's deterministic counters into SearchStats.
func ilpStats(sol ilp.Solution) SearchStats {
	return SearchStats{
		ILPNodes:  sol.Nodes,
		ILPPruned: sol.Pruned,
		ILPTasks:  sol.Tasks,
		SeedCost:  sol.SeedObjective,
	}
}

// CoarseILPPlanner reduces the decision-variable count before solving:
// join units sharing a center of gravity are packed together into at most
// Bins bins (75 in the paper), each bin is assigned as a whole, and the
// solution expands back to the member units. Faster to solve, potentially
// poorer plans — the trade explored in Section 5.2. Budget, MaxExplored,
// and Workers behave as in ILPPlanner.
type CoarseILPPlanner struct {
	Budget      time.Duration
	Bins        int
	MaxExplored int64
	Workers     int
}

// Name implements Planner.
func (CoarseILPPlanner) Name() string { return "ILP-Coarse" }

// Plan implements Planner.
func (p CoarseILPPlanner) Plan(pr *Problem) (Result, error) {
	start := time.Now()
	bins := p.Bins
	if bins <= 0 {
		bins = 75
	}

	groups := packBins(pr, bins)

	// Build the coarse problem: per-bin slice sums and comparison costs.
	coarse := &ilp.Problem{K: pr.K, Transfer: pr.Params.Transfer}
	for _, g := range groups {
		row := make([]int64, pr.K)
		var comp float64
		for _, i := range g {
			for j := 0; j < pr.K; j++ {
				row[j] += pr.Sizes[i][j]
			}
			comp += pr.Comp[i]
		}
		coarse.Sizes = append(coarse.Sizes, row)
		coarse.Comp = append(coarse.Comp, comp)
	}
	sol, err := ilp.SolveOpts(coarse, solverOptions(pr, p.Budget, p.MaxExplored, p.Workers))
	if err != nil {
		return Result{}, err
	}
	a := make(Assignment, pr.N)
	for b, g := range groups {
		for _, i := range g {
			a[i] = sol.Assignment[b]
		}
	}
	return Result{
		Planner:    p.Name(),
		Assignment: a,
		Model:      pr.Evaluate(a),
		PlanTime:   time.Since(start),
		Optimal:    sol.Optimal,
		Search:     ilpStats(sol),
	}, nil
}

// packBins groups units by center of gravity, then splits each gravity
// group into size-balanced bins so the total bin count stays at or under
// the target. Grouping same-gravity units avoids the solver "bin
// conflicts" the paper describes (bins torn between two hosts).
func packBins(pr *Problem, bins int) [][]int {
	if bins < pr.K {
		bins = pr.K
	}
	byCog := make([][]int, pr.K)
	for i := 0; i < pr.N; i++ {
		c := argmax(pr.Sizes[i])
		byCog[c] = append(byCog[c], i)
	}
	perCog := bins / pr.K
	if perCog < 1 {
		perCog = 1
	}
	var groups [][]int
	for _, members := range byCog {
		if len(members) == 0 {
			continue
		}
		nb := perCog
		if nb > len(members) {
			nb = len(members)
		}
		// Greedy size-balanced packing: biggest unit into the lightest bin.
		idx := append([]int(nil), members...)
		sortBySizeDesc(pr, idx)
		binUnits := make([][]int, nb)
		binLoad := make([]int64, nb)
		for _, i := range idx {
			light := 0
			for b := 1; b < nb; b++ {
				if binLoad[b] < binLoad[light] {
					light = b
				}
			}
			binUnits[light] = append(binUnits[light], i)
			binLoad[light] += pr.UnitTotal[i]
		}
		groups = append(groups, binUnits...)
	}
	return groups
}

func sortBySizeDesc(pr *Problem, idx []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && pr.UnitTotal[idx[j]] > pr.UnitTotal[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
