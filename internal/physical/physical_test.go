package physical

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/workload"
)

// mkProblem builds a problem from combined slice matrices, splitting cells
// evenly between the two sides.
func mkProblem(t *testing.T, k int, algo join.Algorithm, sizes [][]int64) *Problem {
	t.Helper()
	left := make([][]int64, len(sizes))
	right := make([][]int64, len(sizes))
	for i, row := range sizes {
		l := make([]int64, k)
		r := make([]int64, k)
		for j, s := range row {
			l[j] = s / 2
			r[j] = s - s/2
		}
		left[i], right[i] = l, r
	}
	pr, err := NewProblem(k, algo, left, right, CostParams{Merge: 1, Build: 3, Probe: 1, Transfer: 10})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return pr
}

func randProblem(rng *rand.Rand, n, k int, algo join.Algorithm) *Problem {
	left := make([][]int64, n)
	right := make([][]int64, n)
	for i := 0; i < n; i++ {
		l := make([]int64, k)
		r := make([]int64, k)
		for j := 0; j < k; j++ {
			l[j] = rng.Int63n(100)
			r[j] = rng.Int63n(100)
		}
		left[i], right[i] = l, r
	}
	pr, _ := NewProblem(k, algo, left, right, DefaultParams())
	return pr
}

func allPlanners() []Planner {
	return []Planner{
		BaselinePlanner{},
		MinBandwidthPlanner{},
		TabuPlanner{},
		ILPPlanner{Budget: 300 * time.Millisecond},
		CoarseILPPlanner{Budget: 300 * time.Millisecond, Bins: 16},
	}
}

func TestNewProblemDerivations(t *testing.T) {
	left := [][]int64{{10, 0}, {4, 6}}
	right := [][]int64{{0, 20}, {1, 1}}
	pr, err := NewProblem(2, join.Hash, left, right, CostParams{Build: 3, Probe: 1, Transfer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr.UnitTotal[0] != 30 || pr.UnitTotal[1] != 12 {
		t.Errorf("UnitTotal = %v", pr.UnitTotal)
	}
	if pr.Sizes[0][0] != 10 || pr.Sizes[0][1] != 20 {
		t.Errorf("Sizes[0] = %v", pr.Sizes[0])
	}
	// Unit 0: small side 10 (left), large 20 -> C = 3*10 + 1*20 = 50.
	if pr.Comp[0] != 50 {
		t.Errorf("Comp[0] = %v, want 50", pr.Comp[0])
	}
	// Unit 1: small 2 (right), large 10 -> C = 3*2 + 1*10 = 16.
	if pr.Comp[1] != 16 {
		t.Errorf("Comp[1] = %v, want 16", pr.Comp[1])
	}
}

func TestNewProblemMergeCost(t *testing.T) {
	pr, err := NewProblem(1, join.Merge, [][]int64{{7}}, [][]int64{{5}}, CostParams{Merge: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Comp[0] != 24 { // m * S_i = 2 * 12
		t.Errorf("Comp = %v, want 24", pr.Comp[0])
	}
}

func TestNewProblemRejectsNestedLoop(t *testing.T) {
	if _, err := NewProblem(2, join.NestedLoop, nil, nil, DefaultParams()); err == nil {
		t.Error("nested loop should be rejected")
	}
}

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(0, join.Merge, nil, nil, DefaultParams()); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewProblem(2, join.Merge, [][]int64{{1, 2}}, nil, DefaultParams()); err == nil {
		t.Error("mismatched sides should fail")
	}
	if _, err := NewProblem(2, join.Merge, [][]int64{{1}}, [][]int64{{1}}, DefaultParams()); err == nil {
		t.Error("short row should fail")
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// 2 nodes. Unit 0: 10 cells on node 0, 20 on node 1. Unit 1: 6 on
	// node 0 only. Assign unit 0 -> node 1, unit 1 -> node 0.
	pr := mkProblem(t, 2, join.Merge, [][]int64{{10, 20}, {6, 0}})
	bd := pr.Evaluate(Assignment{1, 0})
	// Node 0 sends unit 0's 10 cells; node 1 sends nothing.
	if bd.MaxSendCells != 10 {
		t.Errorf("MaxSendCells = %d, want 10", bd.MaxSendCells)
	}
	// Node 1 receives 10; node 0 receives 0.
	if bd.MaxRecvCells != 10 {
		t.Errorf("MaxRecvCells = %d, want 10", bd.MaxRecvCells)
	}
	if bd.AlignTime != 100 { // 10 cells * t=10
		t.Errorf("AlignTime = %v, want 100", bd.AlignTime)
	}
	// Comp (m=1): node 1 gets unit 0 (30), node 0 gets unit 1 (6): max 30.
	if bd.CompareTime != 30 {
		t.Errorf("CompareTime = %v, want 30", bd.CompareTime)
	}
	if bd.Total != 130 {
		t.Errorf("Total = %v, want 130", bd.Total)
	}
}

func TestCellsMoved(t *testing.T) {
	pr := mkProblem(t, 2, join.Merge, [][]int64{{10, 20}, {6, 0}})
	if got := pr.CellsMoved(Assignment{1, 0}); got != 10 {
		t.Errorf("CellsMoved = %d, want 10", got)
	}
	if got := pr.CellsMoved(Assignment{0, 0}); got != 20 {
		t.Errorf("CellsMoved = %d, want 20", got)
	}
}

func TestMBHMinimizesBandwidthProperty(t *testing.T) {
	// Equation 9's center-of-gravity placement provably minimizes cells
	// moved; verify against random alternatives.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr := randProblem(rng, rng.Intn(20)+1, rng.Intn(4)+2, join.Merge)
		res, err := MinBandwidthPlanner{}.Plan(pr)
		if err != nil {
			return false
		}
		mbh := pr.CellsMoved(res.Assignment)
		for trial := 0; trial < 10; trial++ {
			alt := make(Assignment, pr.N)
			for i := range alt {
				alt[i] = rng.Intn(pr.K)
			}
			if pr.CellsMoved(alt) < mbh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBaselineHashContiguousBlocks(t *testing.T) {
	pr := randProblem(rand.New(rand.NewSource(1)), 8, 4, join.Hash)
	res, err := BaselinePlanner{}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	want := Assignment{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if res.Assignment[i] != want[i] {
			t.Fatalf("baseline hash assignment = %v, want %v", res.Assignment, want)
		}
	}
}

func TestBaselineMergeMovesSmallerArray(t *testing.T) {
	// Left array is larger; every unit must go where the LEFT slice lives.
	left := [][]int64{{100, 0}, {0, 100}}
	right := [][]int64{{0, 5}, {5, 0}}
	pr, err := NewProblem(2, join.Merge, left, right, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BaselinePlanner{}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != 0 || res.Assignment[1] != 1 {
		t.Errorf("assignment = %v, want [0 1] (follow the larger array)", res.Assignment)
	}
}

func TestTabuNeverWorseThanMBH(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr := randProblem(rng, rng.Intn(40)+2, rng.Intn(4)+2, join.Hash)
		mbh, err1 := MinBandwidthPlanner{}.Plan(pr)
		tabu, err2 := TabuPlanner{}.Plan(pr)
		if err1 != nil || err2 != nil {
			return false
		}
		return tabu.Model.Total <= mbh.Model.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTabuImprovesSkewedComparisonLoad(t *testing.T) {
	// All units live on node 0 with modest transfer cost: MBH piles all
	// comparison on node 0; Tabu must shed load.
	n := 16
	sizes := make([][]int64, n)
	for i := range sizes {
		sizes[i] = []int64{100, 0, 0, 0}
	}
	pr := mkProblem(t, 4, join.Merge, sizes)
	pr.Params.Transfer = 0.001 // cheap network, expensive comparison
	for i := range pr.Comp {
		pr.Comp[i] = pr.Params.Merge * float64(pr.UnitTotal[i])
	}
	mbh, _ := MinBandwidthPlanner{}.Plan(pr)
	tabu, _ := TabuPlanner{}.Plan(pr)
	if tabu.Model.Total >= mbh.Model.Total {
		t.Errorf("tabu (%v) did not improve on MBH (%v)", tabu.Model.Total, mbh.Model.Total)
	}
	if tabu.Model.CompareTime >= mbh.Model.CompareTime {
		t.Errorf("tabu comparison time %v not below MBH's %v",
			tabu.Model.CompareTime, mbh.Model.CompareTime)
	}
}

// TestTabuParallelMatchesSequential: sharding the neighborhood evaluation
// must not change the search trajectory — on skewed Zipf workloads large
// enough to take the parallel path, every Workers setting produces the
// bit-for-bit identical assignment and model cost.
func TestTabuParallelMatchesSequential(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0, 2.0} {
		rng := rand.New(rand.NewSource(int64(alpha * 100)))
		ls := workload.ZipfUnitSizes(1024, alpha, 1<<20, rng)
		rs := workload.ZipfUnitSizes(1024, alpha, 1<<20, rng)
		left, right := workload.HashSlices(ls, rs, 8, alpha, rng)
		pr, err := NewProblem(8, join.Hash, left, right, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		seq, err := TabuPlanner{Workers: 1}.Plan(pr)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 7} {
			par, err := TabuPlanner{Workers: w}.Plan(pr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par.Assignment, seq.Assignment) {
				t.Errorf("alpha=%v workers=%d: assignment diverged from sequential", alpha, w)
			}
			if par.Model.Total != seq.Model.Total {
				t.Errorf("alpha=%v workers=%d: cost %v != sequential %v",
					alpha, w, par.Model.Total, seq.Model.Total)
			}
		}
	}
}

// TestILPPlannersParallelMatchSequential: on instances the solver exhausts,
// the parallel search returns the same canonical optimum.
func TestILPPlannersParallelMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pr := randProblem(rng, 10, 3, join.Hash)
	seq, err := ILPPlanner{Budget: 10 * time.Second, Workers: 1}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ILPPlanner{Budget: 10 * time.Second, Workers: 4}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Optimal || !par.Optimal {
		t.Fatal("instance should be solved optimally at any worker count")
	}
	if !reflect.DeepEqual(par.Assignment, seq.Assignment) {
		t.Errorf("parallel ILP assignment %v != sequential %v", par.Assignment, seq.Assignment)
	}

	coarse := randProblem(rng, 64, 3, join.Hash)
	cseq, err := CoarseILPPlanner{Budget: 10 * time.Second, Bins: 8, Workers: 1}.Plan(coarse)
	if err != nil {
		t.Fatal(err)
	}
	cpar, err := CoarseILPPlanner{Budget: 10 * time.Second, Bins: 8, Workers: 4}.Plan(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cpar.Assignment, cseq.Assignment) {
		t.Error("parallel coarse ILP assignment diverged from sequential")
	}
}

// TestILPPlannerMaxExploredDeterministic: with a node budget instead of a
// wall-clock budget, the truncated plan is reproducible run to run.
func TestILPPlannerMaxExploredDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pr := randProblem(rng, 60, 4, join.Hash)
	p := ILPPlanner{MaxExplored: 5_000}
	first, err := p.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	if first.Optimal {
		t.Fatal("60-unit instance should not exhaust within 5000 nodes")
	}
	second, err := p.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Assignment, first.Assignment) || second.Model.Total != first.Model.Total {
		t.Errorf("MaxExplored plan not reproducible: %v (%v) vs %v (%v)",
			first.Assignment, first.Model.Total, second.Assignment, second.Model.Total)
	}
}

func TestILPOptimalOnSmallInstances(t *testing.T) {
	// With ample budget the ILP must match or beat every other planner.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		pr := randProblem(rng, 8, 3, join.Hash)
		ilpRes, err := ILPPlanner{Budget: 5 * time.Second}.Plan(pr)
		if err != nil {
			t.Fatal(err)
		}
		if !ilpRes.Optimal {
			t.Fatal("small instance should be solved optimally")
		}
		for _, pl := range allPlanners() {
			res, err := pl.Plan(pr)
			if err != nil {
				t.Fatal(err)
			}
			if ilpRes.Model.Total > res.Model.Total+1e-9 {
				t.Errorf("ILP (%v) beaten by %s (%v)", ilpRes.Model.Total, pl.Name(), res.Model.Total)
			}
		}
	}
}

func TestCoarseBinsShareCenterOfGravity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pr := randProblem(rng, 64, 4, join.Hash)
	groups := packBins(pr, 16)
	total := 0
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty bin")
		}
		cog := argmax(pr.Sizes[g[0]])
		for _, i := range g {
			if argmax(pr.Sizes[i]) != cog {
				t.Fatal("bin mixes centers of gravity")
			}
		}
		total += len(g)
	}
	if total != pr.N {
		t.Fatalf("bins cover %d units, want %d", total, pr.N)
	}
	if len(groups) > 16 {
		t.Errorf("%d bins exceed target 16", len(groups))
	}
}

func TestAllPlannersProduceValidAssignments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		algo := join.Merge
		if seed%2 == 0 {
			algo = join.Hash
		}
		pr := randProblem(rng, rng.Intn(30)+1, rng.Intn(5)+1, algo)
		for _, pl := range allPlanners() {
			res, err := pl.Plan(pr)
			if err != nil || !pr.Valid(res.Assignment) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestNodeCostsSumConsistentWithEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pr := randProblem(rng, 20, 4, join.Merge)
	a := CenterOfGravity(pr)
	bd := pr.Evaluate(a)
	costs := pr.NodeCosts(a)
	var maxNode float64
	for _, c := range costs {
		if c > maxNode {
			maxNode = c
		}
	}
	// The max per-node cost bounds the model total from below (total uses
	// independent maxima which can come from different nodes).
	if bd.Total < maxNode-1e-9 {
		t.Errorf("Evaluate total %v below max node cost %v", bd.Total, maxNode)
	}
}

func TestUniformDataAllPlannersComparable(t *testing.T) {
	// Section 6.2: with uniform data all optimizers produce plans of
	// similar quality. Require every planner within 2x of the best.
	n, k := 32, 4
	sizes := make([][]int64, n)
	for i := range sizes {
		row := make([]int64, k)
		for j := range row {
			row[j] = 50
		}
		sizes[i] = row
	}
	pr := mkProblem(t, k, join.Hash, sizes)
	best := math.Inf(1)
	totals := map[string]float64{}
	for _, pl := range allPlanners() {
		res, err := pl.Plan(pr)
		if err != nil {
			t.Fatal(err)
		}
		totals[pl.Name()] = res.Model.Total
		if res.Model.Total < best {
			best = res.Model.Total
		}
	}
	for name, total := range totals {
		if total > 2*best {
			t.Errorf("%s total %v more than 2x best %v on uniform data", name, total, best)
		}
	}
}

func TestLowerBoundHoldsForAllPlanners(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		algo := join.Merge
		if seed%2 == 0 {
			algo = join.Hash
		}
		pr := randProblem(rng, rng.Intn(30)+1, rng.Intn(5)+1, algo)
		lb := LowerBound(pr)
		for _, pl := range append(allPlanners(), GreedyPlanner{}) {
			res, err := pl.Plan(pr)
			if err != nil {
				return false
			}
			if res.Model.Total < lb-1e-9 {
				t.Logf("%s: cost %v below lower bound %v", pl.Name(), res.Model.Total, lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundExactOnOptimal(t *testing.T) {
	// On a tiny instance the exhaustive ILP optimum must sit at or above
	// the bound, and on perfectly uniform local data (nothing to move,
	// identical unit costs, N a multiple of K) exactly on it.
	sizes := [][]int64{{8, 0}, {0, 8}, {8, 0}, {0, 8}}
	pr := mkProblem(t, 2, join.Merge, sizes)
	res, err := ILPPlanner{Budget: time.Second}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("instance too small not to solve optimally")
	}
	lb := LowerBound(pr)
	if res.Model.Total < lb-1e-9 {
		t.Errorf("optimum %v below bound %v", res.Model.Total, lb)
	}
	if math.Abs(res.Model.Total-lb) > 1e-9 {
		t.Errorf("uniform instance: optimum %v != bound %v", res.Model.Total, lb)
	}
}

func TestGreedyPlannerNeverWorseThanMBH(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		pr := randProblem(rng, 40, 4, join.Hash)
		mbh, _ := MinBandwidthPlanner{}.Plan(pr)
		greedy, err := GreedyPlanner{}.Plan(pr)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Planner != "Greedy" {
			t.Fatalf("Planner = %q", greedy.Planner)
		}
		if greedy.Model.Total > mbh.Model.Total+1e-9 {
			t.Errorf("trial %d: greedy %v worse than its MBH seed %v",
				trial, greedy.Model.Total, mbh.Model.Total)
		}
		if !pr.Valid(greedy.Assignment) {
			t.Fatalf("trial %d: invalid assignment", trial)
		}
	}
}

func TestGreedyPlannerDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pr := randProblem(rng, 64, 6, join.Merge)
	seq, _ := GreedyPlanner{Workers: 1}.Plan(pr)
	par8, _ := GreedyPlanner{Workers: 8}.Plan(pr)
	if !reflect.DeepEqual(seq.Assignment, par8.Assignment) {
		t.Error("greedy assignment depends on Workers")
	}
	if seq.Model != par8.Model {
		t.Errorf("greedy cost differs: %v vs %v", seq.Model, par8.Model)
	}
}
