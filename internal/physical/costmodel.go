// Package physical implements the physical shuffle join planner of
// Section 5 of the paper: given per-node slice statistics for every join
// unit, it assigns each unit to a cluster node, balancing network transfer
// (the scarcest shared resource in a shared-nothing cluster) against
// cell-comparison load.
//
// The analytical cost model follows Equations 4–8: a plan's data alignment
// time is t times the larger of the worst per-node send and receive cell
// counts, and its cell comparison time is the worst per-node sum of unit
// costs C_i, where C_i depends on the chosen join algorithm.
package physical

import (
	"fmt"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/obs"
)

// CostParams are the empirically derived per-cell cost parameters of
// Section 5.1: m (merge comparison), b (hash build), p (hash probe), and t
// (cell transmission). Units are seconds per cell.
type CostParams struct {
	Merge    float64 // m
	Build    float64 // b — building a hash entry costs much more than probing
	Probe    float64 // p
	Transfer float64 // t
}

// DefaultParams returns parameters calibrated against this repository's
// join implementations on commodity hardware (see the calibration bench in
// internal/bench); they preserve the paper's orderings: b ≫ p, and network
// transfer dominating per-cell compute.
func DefaultParams() CostParams {
	return CostParams{
		Merge:    40e-9,
		Build:    120e-9,
		Probe:    30e-9,
		Transfer: 800e-9,
	}
}

// Problem is one physical planning instance: the slice statistics reported
// to the coordinator after slice mapping.
type Problem struct {
	K    int
	Algo join.Algorithm // merge or hash (nested loop is never planned; §5.1)
	// Left[i][j] and Right[i][j] hold s_ij per side: cells of join unit i
	// resident on node j in each input array.
	Left, Right [][]int64
	Params      CostParams

	// Derived (filled by NewProblem).
	N          int       // join units
	Sizes      [][]int64 // combined s_ij (both sides travel together)
	UnitTotal  []int64   // S_i
	LeftTotal  []int64   // per-unit left-side cells (hash join build/probe split)
	RightTotal []int64
	Comp       []float64 // C_i

	// Span, when non-nil, receives per-planner observability attributes
	// (search counters, seed cost). All planners tolerate nil.
	Span *obs.Span
}

// NewProblem derives the per-unit aggregates and algorithm-specific unit
// costs C_i (Section 5.1: C_i = m·S_i for merge, b·t_i + p·u_i for hash
// with t_i the smaller and u_i the larger side).
func NewProblem(k int, algo join.Algorithm, left, right [][]int64, params CostParams) (*Problem, error) {
	if k <= 0 {
		return nil, fmt.Errorf("physical: k = %d", k)
	}
	if algo == join.NestedLoop {
		return nil, fmt.Errorf("physical: nested loop join is never profitable and is not modeled (Section 5.1)")
	}
	if len(left) != len(right) {
		return nil, fmt.Errorf("physical: %d left units vs %d right units", len(left), len(right))
	}
	pr := &Problem{K: k, Algo: algo, Left: left, Right: right, Params: params, N: len(left)}
	pr.Sizes = make([][]int64, pr.N)
	pr.UnitTotal = make([]int64, pr.N)
	pr.LeftTotal = make([]int64, pr.N)
	pr.RightTotal = make([]int64, pr.N)
	pr.Comp = make([]float64, pr.N)
	for i := 0; i < pr.N; i++ {
		if len(left[i]) != k || len(right[i]) != k {
			return nil, fmt.Errorf("physical: unit %d has slice rows of length %d/%d, want %d",
				i, len(left[i]), len(right[i]), k)
		}
		row := make([]int64, k)
		for j := 0; j < k; j++ {
			row[j] = left[i][j] + right[i][j]
			pr.LeftTotal[i] += left[i][j]
			pr.RightTotal[i] += right[i][j]
		}
		pr.Sizes[i] = row
		pr.UnitTotal[i] = pr.LeftTotal[i] + pr.RightTotal[i]
		small, large := pr.LeftTotal[i], pr.RightTotal[i]
		if small > large {
			small, large = large, small
		}
		switch algo {
		case join.Merge:
			pr.Comp[i] = params.Merge * float64(pr.UnitTotal[i])
		case join.Hash:
			pr.Comp[i] = params.Build*float64(small) + params.Probe*float64(large)
		}
	}
	return pr, nil
}

// Assignment maps each join unit to the node that will process it.
type Assignment []int

// Valid reports whether every unit is assigned to a node in range
// (Equation 4's Σ_j x_ij = 1 constraint).
func (pr *Problem) Valid(a Assignment) bool {
	if len(a) != pr.N {
		return false
	}
	for _, j := range a {
		if j < 0 || j >= pr.K {
			return false
		}
	}
	return true
}

// Breakdown is the modeled cost of an assignment, split by phase.
type Breakdown struct {
	MaxSendCells, MaxRecvCells int64   // worst per-node cells sent / received
	AlignTime                  float64 // max(s, r) · t
	CompareTime                float64 // max_j Σ_{i→j} C_i
	Total                      float64 // Equation 8
}

// Evaluate applies the analytical cost model (Equations 5–8) to a plan.
func (pr *Problem) Evaluate(a Assignment) Breakdown {
	send := make([]int64, pr.K)
	recv := make([]int64, pr.K)
	comp := make([]float64, pr.K)
	pr.accumulate(a, send, recv, comp)
	var bd Breakdown
	for j := 0; j < pr.K; j++ {
		if send[j] > bd.MaxSendCells {
			bd.MaxSendCells = send[j]
		}
		if recv[j] > bd.MaxRecvCells {
			bd.MaxRecvCells = recv[j]
		}
		if comp[j] > bd.CompareTime {
			bd.CompareTime = comp[j]
		}
	}
	move := bd.MaxSendCells
	if bd.MaxRecvCells > move {
		move = bd.MaxRecvCells
	}
	bd.AlignTime = float64(move) * pr.Params.Transfer
	bd.Total = bd.AlignTime + bd.CompareTime
	return bd
}

// NodeCosts returns the per-node cost used by the Tabu search: each node's
// own alignment plus comparison time (the model of Equations 5–7 evaluated
// for a single j rather than as a max).
func (pr *Problem) NodeCosts(a Assignment) []float64 {
	send := make([]int64, pr.K)
	recv := make([]int64, pr.K)
	comp := make([]float64, pr.K)
	pr.accumulate(a, send, recv, comp)
	out := make([]float64, pr.K)
	for j := 0; j < pr.K; j++ {
		move := send[j]
		if recv[j] > move {
			move = recv[j]
		}
		out[j] = float64(move)*pr.Params.Transfer + comp[j]
	}
	return out
}

func (pr *Problem) accumulate(a Assignment, send, recv []int64, comp []float64) {
	for i := 0; i < pr.N; i++ {
		dest := a[i]
		comp[dest] += pr.Comp[i]
		for j, s := range pr.Sizes[i] {
			if j == dest {
				continue
			}
			send[j] += s
			recv[dest] += s
		}
	}
}

// LowerBound returns a bound no assignment's Equation-8 cost can beat,
// from two independent relaxations. Comparison: the worst per-node sum of
// C_i is at least the perfectly balanced share ΣC_i/K and at least the
// single largest C_i. Alignment: unit i lands on exactly one node, so at
// least S_i − max_j s_ij of its cells cross the network into that node;
// the worst per-node receive count is therefore at least the balanced
// share Σ_i minMoved_i / K and at least the largest single minMoved_i.
// Each relaxation bounds its phase for every feasible assignment, so the
// sum bounds the total. The bound is exact on uniform data (everything
// balances) and stays tight under skew, where the max-terms dominate —
// which is what makes it usable as the denominator in the plan policy's
// predicted-regret test.
func LowerBound(pr *Problem) float64 {
	var compSum, compMax float64
	var movedSum, movedMax int64
	for i := 0; i < pr.N; i++ {
		compSum += pr.Comp[i]
		if pr.Comp[i] > compMax {
			compMax = pr.Comp[i]
		}
		minMoved := pr.UnitTotal[i] - pr.Sizes[i][argmax(pr.Sizes[i])]
		movedSum += minMoved
		if minMoved > movedMax {
			movedMax = minMoved
		}
	}
	compLB := compSum / float64(pr.K)
	if compMax > compLB {
		compLB = compMax
	}
	recvLB := float64(movedSum) / float64(pr.K)
	if m := float64(movedMax); m > recvLB {
		recvLB = m
	}
	return recvLB*pr.Params.Transfer + compLB
}

// CellsMoved returns the total cells a plan ships over the network.
func (pr *Problem) CellsMoved(a Assignment) int64 {
	var moved int64
	for i := 0; i < pr.N; i++ {
		moved += pr.UnitTotal[i] - pr.Sizes[i][a[i]]
	}
	return moved
}

// SearchStats are planner-internal search counters, deterministic at every
// Workers setting (see the ilp package and TabuPlanner determinism notes).
// Fields irrelevant to a planner stay zero.
type SearchStats struct {
	ILPNodes  int64   // branch-and-bound nodes explored
	ILPPruned int64   // subtrees cut by the lower bound
	ILPTasks  int     // size of the deterministic task decomposition
	SeedCost  float64 // greedy seed objective the search started from

	TabuRounds  int   // outer rebalancing rounds
	TabuMoves   int   // accepted unit moves
	TabuWhatIfs int64 // candidate moves costed
}

// Result is a planner's output: the assignment, its modeled cost, and
// planning metadata.
type Result struct {
	Planner    string
	Assignment Assignment
	Model      Breakdown
	PlanTime   time.Duration
	Optimal    bool        // ILP solvers: search space exhausted within budget
	Search     SearchStats // deterministic search counters
}

// Planner produces a join-unit-to-node assignment for a problem.
type Planner interface {
	Name() string
	Plan(pr *Problem) (Result, error)
}
