package shufflejoin

import (
	"fmt"
	"time"

	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/pipeline"
)

// Profile is a query's EXPLAIN ANALYZE digest: per-stage wall and
// simulated timings, plan provenance (source, regret, cache outcome,
// every candidate plan with its modeled costs), shuffle transfer totals,
// and per-node skew diagnostics. Render it human-readable with String,
// or machine-readable with WriteJSON; the per-stage simulated timings
// sum exactly to MakespanSeconds and are bit-identical at every
// Parallelism setting.
type Profile = pipeline.Profile

// ObsHub is a live telemetry endpoint for the database: it implements
// the engine's query hooks and serves
//
//	/metrics         — cumulative metrics, Prometheus text format
//	/debug/queries   — ring-buffer query log with profiles
//	/debug/inflight  — per-stage progress of running queries
//
// Create one with DB.NewObsHub, attach it to queries with WithQueryLog,
// and expose it with Serve (or mount Handler on an existing mux).
type ObsHub = obshttp.Hub

// ObsConfig configures DB.NewObsHub.
type ObsConfig struct {
	// QueryLogCapacity bounds the /debug/queries ring buffer (default 128).
	QueryLogCapacity int
	// SlowQuery marks log entries at or above the threshold as slow;
	// zero disables slow marking.
	SlowQuery time.Duration
}

// NewObsHub creates a telemetry hub backed by the database's cumulative
// metrics registry. Queries run with WithQueryLog(hub) appear in the
// hub's query log and in-flight view; /metrics additionally reflects
// every query's folded trace metrics (see MetricsSnapshot).
func (db *DB) NewObsHub(cfg ObsConfig) *ObsHub {
	return obshttp.NewHub(obshttp.Config{
		Registry:         db.metrics,
		QueryLogCapacity: cfg.QueryLogCapacity,
		SlowQuery:        cfg.SlowQuery,
	})
}

// WithProfile makes the query assemble an EXPLAIN ANALYZE profile into
// Result.Profile: per-stage timings, plan provenance and candidate
// costs, shuffle totals, and per-node skew diagnostics. Profiling adds
// no simulated cost and does not perturb the query's determinism
// guarantees.
func WithProfile() QueryOption {
	return func(c *queryConfig) error {
		c.profile = true
		return nil
	}
}

// WithQueryLog routes the query through a telemetry hub: it becomes
// visible on the hub's /debug/inflight while running and lands in the
// /debug/queries log — profiled — when it finishes. Attaching a hub
// implies WithProfile.
func WithQueryLog(hub *ObsHub) QueryOption {
	return func(c *queryConfig) error {
		if hub == nil {
			return fmt.Errorf("shufflejoin: WithQueryLog needs a non-nil hub (use NewObsHub)")
		}
		c.hooks = hub
		return nil
	}
}

// ExplainAnalyze executes the query with profiling enabled and returns
// its EXPLAIN ANALYZE profile — the executed counterpart of Explain:
// actual per-stage timings, the plan that ran and every candidate it
// beat, shuffle totals, and per-node skew.
//
//	p, _ := db.ExplainAnalyze("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
//	fmt.Println(p)
func (db *DB) ExplainAnalyze(q string, opts ...QueryOption) (*Profile, error) {
	res, err := db.Query(q, append(opts, WithProfile())...)
	if err != nil {
		return nil, err
	}
	if res.Profile == nil {
		return nil, fmt.Errorf("shufflejoin: no profile for %q (multi-way queries are not profiled per-plan; inspect Result fields instead)", q)
	}
	return res.Profile, nil
}
