package shufflejoin

import (
	"fmt"
	"time"

	"shufflejoin/internal/flight"
	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/pipeline"
)

// Profile is a query's EXPLAIN ANALYZE digest: per-stage wall and
// simulated timings, plan provenance (source, regret, cache outcome,
// every candidate plan with its modeled costs), shuffle transfer totals,
// and per-node skew diagnostics. Render it human-readable with String,
// or machine-readable with WriteJSON; the per-stage simulated timings
// sum exactly to MakespanSeconds and are bit-identical at every
// Parallelism setting.
type Profile = pipeline.Profile

// ObsHub is a live telemetry endpoint for the database: it implements
// the engine's query hooks and serves
//
//	/metrics         — cumulative metrics, Prometheus text format
//	/debug/queries   — ring-buffer query log with profiles
//	/debug/inflight  — per-stage progress of running queries
//
// Create one with DB.NewObsHub, attach it to queries with WithQueryLog,
// and expose it with Serve (or mount Handler on an existing mux).
type ObsHub = obshttp.Hub

// ObsConfig configures DB.NewObsHub.
type ObsConfig struct {
	// QueryLogCapacity bounds the /debug/queries ring buffer (default 128).
	QueryLogCapacity int
	// SlowQuery marks log entries at or above the threshold as slow;
	// zero disables slow marking.
	SlowQuery time.Duration
	// Flight is the flight recorder the hub dumps on /debug/flight and
	// feeds into its anomaly detector; nil uses the process-wide default
	// ring (the one queries record into unless overridden).
	Flight *FlightRecorder
	// Status annotates /debug/status with deployment identification
	// (component name plus free-form details).
	Status StatusInfo
	// Scheduler, when non-nil, annotates /debug/inflight and
	// /debug/status with the query scheduler's live admission state
	// (queue depths per class, memory-pool usage, free stage slots).
	Scheduler *Scheduler
}

// NewObsHub creates a telemetry hub backed by the database's cumulative
// metrics registry. Queries run with WithQueryLog(hub) appear in the
// hub's query log and in-flight view; /metrics additionally reflects
// every query's folded trace metrics (see MetricsSnapshot).
func (db *DB) NewObsHub(cfg ObsConfig) *ObsHub {
	return obshttp.NewHub(obshttp.Config{
		Registry:         db.metrics,
		QueryLogCapacity: cfg.QueryLogCapacity,
		SlowQuery:        cfg.SlowQuery,
		Flight:           cfg.Flight,
		Status:           cfg.Status,
		Sched:            cfg.Scheduler,
	})
}

// WithProfile makes the query assemble an EXPLAIN ANALYZE profile into
// Result.Profile: per-stage timings, plan provenance and candidate
// costs, shuffle totals, and per-node skew diagnostics. Profiling adds
// no simulated cost and does not perturb the query's determinism
// guarantees.
func WithProfile() QueryOption {
	return func(c *queryConfig) error {
		c.profile = true
		return nil
	}
}

// WithQueryLog routes the query through a telemetry hub: it becomes
// visible on the hub's /debug/inflight while running and lands in the
// /debug/queries log — profiled — when it finishes. Attaching a hub
// implies WithProfile.
func WithQueryLog(hub *ObsHub) QueryOption {
	return func(c *queryConfig) error {
		if hub == nil {
			return fmt.Errorf("shufflejoin: WithQueryLog needs a non-nil hub (use NewObsHub)")
		}
		c.hooks = hub
		return nil
	}
}

// FlightRecorder is the engine's always-on flight recorder: a lock-free
// fixed-capacity ring of compact structured events (query lifecycle,
// stage boundaries, plan-cache outcomes, memory-budget traffic, shuffle
// congestion, anomalies) recorded from every layer of the engine at zero
// allocations per event. Every query records into the process-wide
// default ring unless WithFlightRecorder pins another one or
// WithoutFlightRecorder opts out. Recording is telemetry only — it never
// feeds back into planning or execution, and recorded runs are
// bit-for-bit identical to unrecorded ones.
type FlightRecorder = flight.Recorder

// FlightStats is a recorder's capacity / recorded-event counters.
type FlightStats = flight.Stats

// Postmortem is a diagnostic-bundle sink: when a query panics, fails a
// strict budget/bounds check, errors, or breaches the sink's SlowQuery
// threshold, the engine writes a directory of evidence (recent flight
// events, the query's profile and progress, a metrics snapshot,
// goroutine stacks, a heap profile). Attach one per query with
// WithPostmortem, process-wide with flight.SetDefaultPostmortem or the
// SHUFFLEJOIN_POSTMORTEM_DIR environment variable, or capture a bundle
// on demand with DB.Postmortem.
type Postmortem = flight.Postmortem

// StatusInfo is the deployment identification served on /debug/status.
type StatusInfo = obshttp.StatusInfo

// NewFlightRecorder creates a standalone flight recorder ring holding up
// to capacity events (rounded up to a power of two; <= 0 uses the
// default capacity). Use it to isolate one query's events from the
// process-wide ring.
func NewFlightRecorder(capacity int) *FlightRecorder { return flight.New(capacity) }

// WithFlightRecorder records the query's flight events into fr instead
// of the process-wide default ring.
func WithFlightRecorder(fr *FlightRecorder) QueryOption {
	return func(c *queryConfig) error {
		if fr == nil {
			return fmt.Errorf("shufflejoin: WithFlightRecorder needs a non-nil recorder (use NewFlightRecorder)")
		}
		c.flight = fr
		return nil
	}
}

// WithoutFlightRecorder disables flight recording for the query. The
// recorder is otherwise always on; the knob exists for overhead
// measurements and equivalence tests.
func WithoutFlightRecorder() QueryOption {
	return func(c *queryConfig) error {
		c.flightOff = true
		return nil
	}
}

// WithPostmortem attaches a diagnostic-bundle sink to the query: a
// panic, strict budget/bounds failure, query error, or (when
// pm.SlowQuery is positive) slow-query breach during execution captures
// a bundle into pm.Dir.
func WithPostmortem(pm *Postmortem) QueryOption {
	return func(c *queryConfig) error {
		if pm == nil || pm.Dir == "" {
			return fmt.Errorf("shufflejoin: WithPostmortem needs a sink with a directory")
		}
		c.postmortem = pm
		return nil
	}
}

// Postmortem captures an on-demand diagnostic bundle into dir — the
// process-wide flight ring's recent events, the database's cumulative
// metrics, goroutine stacks, and a heap profile — and returns the
// bundle directory. Use it to snapshot a live engine that is
// misbehaving without crashing.
func (db *DB) Postmortem(dir string) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("shufflejoin: Postmortem needs a directory")
	}
	pm := &flight.Postmortem{Dir: dir, Metrics: db.metrics.WritePrometheus}
	return pm.Capture("on-demand")
}

// ExplainAnalyze executes the query with profiling enabled and returns
// its EXPLAIN ANALYZE profile — the executed counterpart of Explain:
// actual per-stage timings, the plan that ran and every candidate it
// beat, shuffle totals, and per-node skew.
//
//	p, _ := db.ExplainAnalyze("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
//	fmt.Println(p)
func (db *DB) ExplainAnalyze(q string, opts ...QueryOption) (*Profile, error) {
	res, err := db.Query(q, append(opts, WithProfile())...)
	if err != nil {
		return nil, err
	}
	if res.Profile == nil {
		return nil, fmt.Errorf("shufflejoin: no profile for %q (multi-way queries are not profiled per-plan; inspect Result fields instead)", q)
	}
	return res.Profile, nil
}
