package shufflejoin

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// obsDB builds a small two-array database for the observability tests.
func obsDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.CreateArray("A<v:int>[i=1,100,10]")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateArray("B<w:int>[i=1,100,10]")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		if err := a.Insert([]int64{i}, i%10); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert([]int64{i}, i%7); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestExplainAnalyze(t *testing.T) {
	db := obsDB(t)
	p, err := db.ExplainAnalyze("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range p.Stages {
		sum += st.SimSeconds
	}
	if sum != p.MakespanSeconds {
		t.Errorf("stage sims sum to %v, makespan %v", sum, p.MakespanSeconds)
	}
	if len(p.Stages) != 6 {
		t.Errorf("%d stages, want 6", len(p.Stages))
	}
	s := p.String()
	for _, want := range []string{"EXPLAIN ANALYZE", "stages", "nodes", "candidates"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestResultStringPlanProvenance(t *testing.T) {
	db := obsDB(t)
	res, err := db.Query("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanSource == "" {
		t.Fatal("two-way query has no PlanSource")
	}
	if want := "plan_source=" + res.PlanSource; !strings.Contains(res.String(), want) {
		t.Errorf("String() missing %q: %s", want, res)
	}
}

func TestQueryLogEndpoints(t *testing.T) {
	db := obsDB(t)
	hub := db.NewObsHub(ObsConfig{})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	res, err := db.Query("SELECT A.v, B.w FROM A, B WHERE A.i = B.i",
		WithQueryLog(hub), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("WithQueryLog did not imply profiling")
	}

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	// The DB registry always counts queries; the WithTrace registry folds
	// in histogram metrics that exercise the bucket exposition.
	for _, want := range []string{"query_count 1", "_bucket{le="} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var qp struct {
		Total   uint64 `json:"total"`
		Queries []struct {
			Query   string          `json:"query"`
			Matches int64           `json:"matches"`
			Profile json.RawMessage `json:"profile"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(get("/debug/queries")), &qp); err != nil {
		t.Fatal(err)
	}
	if qp.Total != 1 || len(qp.Queries) != 1 {
		t.Fatalf("query log total=%d len=%d, want 1/1", qp.Total, len(qp.Queries))
	}
	if !strings.Contains(qp.Queries[0].Query, "SELECT") {
		t.Errorf("log entry label %q does not carry the AQL text", qp.Queries[0].Query)
	}
	if qp.Queries[0].Matches != res.Matches {
		t.Errorf("logged matches %d, result %d", qp.Queries[0].Matches, res.Matches)
	}
	if len(qp.Queries[0].Profile) == 0 || string(qp.Queries[0].Profile) == "null" {
		t.Error("log entry has no profile")
	}

	var ip struct {
		Running []json.RawMessage `json:"running"`
	}
	if err := json.Unmarshal([]byte(get("/debug/inflight")), &ip); err != nil {
		t.Fatal(err)
	}
	if len(ip.Running) != 0 {
		t.Errorf("finished query still in /debug/inflight")
	}
}

// TestProfileDeterministicViaFacade is the facade-level acceptance
// check: ExplainAnalyze profiles fingerprint identically across
// Parallelism 1, 4, and 0.
func TestProfileDeterministicViaFacade(t *testing.T) {
	var base string
	for i, par := range []int{1, 4, 0} {
		db := obsDB(t)
		p, err := db.ExplainAnalyze("SELECT A.v, B.w FROM A, B WHERE A.i = B.i",
			WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		fp := p.Fingerprint()
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Errorf("profile fingerprint at par=%d diverges:\n--- base ---\n%s\n--- got ---\n%s", par, base, fp)
		}
	}
}
